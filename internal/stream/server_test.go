package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// newTestServer wraps a fake-strategy engine in the HTTP API.
func newTestServer(t *testing.T, cfg Config) (*Engine, *Server) {
	t.Helper()
	e := newTestEngine(t, cfg)
	t.Cleanup(func() { e.Close() })
	return e, NewServer(e, ServerConfig{})
}

// jsonlBody renders events in the POST /v1/events wire shape.
func jsonlBody(t *testing.T, events ...mcelog.Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := mcelog.FromEvents(events).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// post ingests a body and decodes the IngestResult.
func post(t *testing.T, srv *Server, body *bytes.Buffer) IngestResult {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events", body))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/events = %d: %s", rec.Code, rec.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	return res
}

func get(t *testing.T, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec, rec.Body.Bytes()
}

func TestServerIngestInspectStats(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	bank := testBank(1)
	res := post(t, srv, jsonlBody(t,
		uerAt(bank, 100, 0), uerAt(bank, 101, 1), uerAt(bank, 102, 2)))
	if res.Accepted != 3 || res.Rejected != 0 || res.Dropped != 0 {
		t.Fatalf("ingest result %+v", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Session inspection by any cell address inside the bank.
	rec, body := get(t, srv, "/v1/banks/"+uerAt(bank, 100, 0).Addr.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("banks = %d: %s", rec.Code, body)
	}
	var sess struct {
		Bank            string `json:"bank"`
		Events          int    `json:"events"`
		DistinctUERRows int    `json:"distinctUERRows"`
		Classified      bool   `json:"classified"`
		RowsIsolated    int    `json:"rowsIsolated"`
	}
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	if sess.Events != 3 || sess.DistinctUERRows != 3 || !sess.Classified || sess.RowsIsolated != 2 {
		t.Errorf("session %+v", sess)
	}
	if sess.Bank != bank.String() {
		t.Errorf("session bank %q, want %q", sess.Bank, bank)
	}

	// Actions arrive in the store via the collector goroutine.
	var acts struct {
		Actions []jsonAction `json:"actions"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = get(t, srv, "/v1/actions")
		if err := json.Unmarshal(body, &acts); err != nil {
			t.Fatal(err)
		}
		if len(acts.Actions) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(acts.Actions) != 1 || acts.Actions[0].Kind != "row-spare" {
		t.Fatalf("actions %+v", acts.Actions)
	}
	if fmt.Sprint(acts.Actions[0].Rows) != "[102 103]" {
		t.Errorf("action rows %v", acts.Actions[0].Rows)
	}

	// limit=0 returns none; a bad limit is a 400.
	_, body = get(t, srv, "/v1/actions?limit=0")
	if err := json.Unmarshal(body, &acts); err != nil || len(acts.Actions) != 0 {
		t.Errorf("limit=0 returned %s", body)
	}
	if rec, _ := get(t, srv, "/v1/actions?limit=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit = %d", rec.Code)
	}

	if rec, body := get(t, srv, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", rec.Code, body)
	}
	var stats map[string]any
	if _, body := get(t, srv, "/statsz"); json.Unmarshal(body, &stats) != nil {
		t.Fatalf("statsz not JSON: %s", body)
	}
	for _, key := range []string{"ingested", "processed", "sessionsLive", "queueDepths",
		"ingestRatePerSec", "actionsEmitted", "processLatency", "decodeLatency"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("statsz missing %q", key)
		}
	}
	if got := stats["ingested"].(float64); got != 3 {
		t.Errorf("statsz ingested = %v", got)
	}
}

// TestServerMalformedLines injects every flavour of bad line; the batch
// must report per-line rejections, keep the good lines, and leave the
// engine healthy for the next batch.
func TestServerMalformedLines(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	good := uerAt(testBank(1), 50, 0)
	var buf bytes.Buffer
	if err := mcelog.FromEvents([]mcelog.Event{good}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json at all\n")
	buf.WriteString(`{"time":"2026-01-01T00:00:01Z","addr":"garbage","class":"UER"}` + "\n")
	buf.WriteString(`{"time":"2026-01-01T00:00:02Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r5.col0","class":"XYZ"}` + "\n")
	buf.WriteString(`{"addr":"n0.u0.h0.s0.c0.p0.g0.b0.r5.col0","class":"UER"}` + "\n") // zero time
	// Out-of-range address (row beyond geometry).
	buf.WriteString(`{"time":"2026-01-01T00:00:03Z","addr":"n0.u0.h0.s0.c0.p0.g0.b0.r99999999.col0","class":"UER"}` + "\n")
	buf.WriteString("\n") // blank lines are skipped, not rejected

	res := post(t, srv, &buf)
	if res.Accepted != 1 || res.Rejected != 5 {
		t.Fatalf("ingest result %+v", res)
	}
	if len(res.Errors) != 5 {
		t.Fatalf("errors %v", res.Errors)
	}
	for i, want := range []string{"line 2", "line 3", "line 4", "line 5", "line 6"} {
		if !strings.Contains(res.Errors[i], want) {
			t.Errorf("error %d = %q, want prefix %q", i, res.Errors[i], want)
		}
	}

	// The engine is not wedged: a follow-up batch lands normally.
	res = post(t, srv, jsonlBody(t, uerAt(testBank(1), 51, 1), uerAt(testBank(1), 52, 2)))
	if res.Accepted != 2 || res.Rejected != 0 {
		t.Fatalf("follow-up result %+v", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := engine.Stats()
	if st.Ingested != 3 || st.Processed != 3 || st.SessionsLive != 1 {
		t.Errorf("engine stats after injection %+v", st)
	}
}

// TestServerOutOfOrderAndDuplicates feeds timestamp regressions and exact
// duplicates: both are accepted (the log layer is append-only), sessions
// must not wedge, and duplicate UERs must not double-count distinct rows.
func TestServerOutOfOrderAndDuplicates(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	bank := testBank(1)
	e1, e2 := uerAt(bank, 10, 5), uerAt(bank, 11, 3) // e2 earlier than e1
	res := post(t, srv, jsonlBody(t, e1, e2, e2, e1, uerAt(bank, 12, 6)))
	if res.Accepted != 5 || res.Rejected != 0 {
		t.Fatalf("ingest result %+v", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st, ok := engine.Session(bank)
	if !ok {
		t.Fatal("no session")
	}
	if st.Events != 5 || st.DistinctUERRows != 3 {
		t.Errorf("session %+v: want 5 events over 3 distinct rows", st)
	}
}

func TestServerBankErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	if rec, _ := get(t, srv, "/v1/banks/not-an-address"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad address = %d", rec.Code)
	}
	if rec, _ := get(t, srv, "/v1/banks/"+testBank(5).String()); rec.Code != http.StatusNotFound {
		t.Errorf("unknown bank = %d", rec.Code)
	}
	if rec, _ := get(t, srv, "/v1/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route = %d", rec.Code)
	}
	// Method mismatch on a defined route.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/events", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/events = %d", rec.Code)
	}
}

// TestServerLongLineWithinBody: a line longer than the old 1 MiB scanner
// default but within the body cap must be handled per-line, not abort the
// batch. (Regression: the scanner buffer used to be capped at 1 MiB even
// with a 32 MiB body limit, so one long line sank the whole batch.)
func TestServerLongLineWithinBody(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 1})
	var buf bytes.Buffer
	if err := mcelog.FromEvents([]mcelog.Event{uerAt(testBank(1), 1, 0)}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// A valid event line padded past 2 MiB (JSON tolerates surrounding
	// whitespace) — must be accepted, not refused for its length.
	var padded bytes.Buffer
	if err := mcelog.FromEvents([]mcelog.Event{uerAt(testBank(1), 2, 1)}).WriteJSONL(&padded); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat(" ", 2<<20))
	buf.Write(padded.Bytes())
	// And a 2 MiB junk line — rejected as one line, batch continues.
	buf.WriteString(strings.Repeat("x", 2<<20) + "\n")
	if err := mcelog.FromEvents([]mcelog.Event{uerAt(testBank(1), 3, 2)}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	res := post(t, srv, &buf)
	if res.Accepted != 3 || res.Rejected != 1 || res.Truncated {
		t.Fatalf("ingest result %+v, want 3 accepted / 1 rejected / not truncated", res)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerExplicitLineCap: an explicitly configured MaxLineBytes still
// truncates the batch at an oversized line, preserving the prefix.
func TestServerExplicitLineCap(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e, ServerConfig{MaxLineBytes: 1 << 16})
	var buf bytes.Buffer
	if err := mcelog.FromEvents([]mcelog.Event{uerAt(testBank(1), 1, 0)}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat("x", 2<<16) + "\n")
	res := post(t, srv, &buf)
	if res.Accepted != 1 || !res.Truncated {
		t.Fatalf("ingest result %+v, want 1 accepted and truncated", res)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestServerIngestAfterEngineClose: a batch against a closed engine fails
// with 503 and reports the partial state instead of panicking.
func TestServerIngestAfterEngineClose(t *testing.T) {
	engine, srv := newTestServer(t, Config{})
	engine.Close()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events",
		jsonlBody(t, uerAt(testBank(1), 1, 0))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST after close = %d: %s", rec.Code, rec.Body)
	}
}

// TestServerActionStoreEviction bounds the action store.
func TestServerActionStoreEviction(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e, ServerConfig{MaxStoredActions: 2})
	// Three even banks -> three bank-spare actions.
	var events []mcelog.Event
	for i := 0; i < 3; i++ {
		bank := testBank(2 + 4*i)
		for j, row := range []int{1, 2, 3} {
			events = append(events, uerAt(bank, row, 10*i+j))
		}
	}
	res := post(t, srv, jsonlBody(t, events...))
	if res.Accepted != 9 {
		t.Fatalf("ingest %+v", res)
	}
	e.Close()
	srv.AwaitDrained()
	var acts struct {
		Actions []jsonAction `json:"actions"`
		Evicted uint64       `json:"evicted"`
	}
	_, body := get(t, srv, "/v1/actions")
	if err := json.Unmarshal(body, &acts); err != nil {
		t.Fatal(err)
	}
	if len(acts.Actions) != 2 || acts.Evicted != 1 {
		t.Fatalf("store %d actions, evicted %d; want 2/1", len(acts.Actions), acts.Evicted)
	}
}

// TestServerBodyTooLarge: a batch over MaxBodyBytes stops at the cap and
// answers 413, still reporting the prefix that landed before the limit.
func TestServerBodyTooLarge(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e, ServerConfig{MaxBodyBytes: 4096})
	var buf bytes.Buffer
	var events []mcelog.Event
	for i := 0; i < 4; i++ {
		events = append(events, uerAt(testBank(1), i+1, i))
	}
	if err := mcelog.FromEvents(events).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat("x", 8<<10) + "\n")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events", &buf))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d: %s", rec.Code, rec.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Accepted != 4 {
		t.Errorf("result %+v, want the 4 in-cap events accepted and truncated set", res)
	}
	// The server is healthy for the next, properly sized batch.
	if res := post(t, srv, jsonlBody(t, uerAt(testBank(1), 9, 9))); res.Accepted != 1 {
		t.Errorf("follow-up batch %+v", res)
	}
}

// TestServerStatszDurabilityAndQuarantine: the WAL and supervision counters
// operators alert on are surfaced by /statsz, and a degraded session is
// visible in its bank view.
func TestServerStatszDurabilityAndQuarantine(t *testing.T) {
	base := t.TempDir()
	cfg := durCfg(filepath.Join(base, "wal"), 2, &fakeStrategy{budget: 3, poisonRow: 666})
	cfg.DeadLetterPath = filepath.Join(base, "dead.jsonl")
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv := NewServer(e, ServerConfig{})
	bank := testBank(1)
	if res := post(t, srv, jsonlBody(t, uerAt(bank, 666, 0), uerAt(bank, 1, 1))); res.Accepted != 2 {
		t.Fatalf("ingest result %+v", res)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	var stats map[string]any
	_, body := get(t, srv, "/statsz")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("statsz not JSON: %s", body)
	}
	if stats["walEnabled"] != true {
		t.Errorf("statsz walEnabled = %v", stats["walEnabled"])
	}
	if got := stats["walAppended"]; got != float64(2) {
		t.Errorf("statsz walAppended = %v, want 2", got)
	}
	if got := stats["quarantined"]; got != float64(1) {
		t.Errorf("statsz quarantined = %v, want 1", got)
	}
	if got := stats["sessionsDegraded"]; got != float64(1) {
		t.Errorf("statsz sessionsDegraded = %v, want 1", got)
	}

	rec, body := get(t, srv, "/v1/banks/"+bank.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("banks = %d: %s", rec.Code, body)
	}
	var sess struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	if !sess.Degraded {
		t.Errorf("bank view does not report degradation: %s", body)
	}
}

// TestServerEventJSONRoundTrip guards the wire shape: what cordial-gen
// -format jsonl writes is exactly what POST /v1/events accepts.
func TestServerEventJSONRoundTrip(t *testing.T) {
	ev := mcelog.Event{
		Time:  time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC),
		Addr:  uerAt(testBank(3), 42, 0).Addr,
		Class: ecc.ClassUEO,
	}
	var buf bytes.Buffer
	if err := mcelog.FromEvents([]mcelog.Event{ev}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := mcelog.ParseJSONEvent(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(ev.Time) || got.Addr != ev.Addr || got.Class != ev.Class {
		t.Fatalf("round trip %+v != %+v", got, ev)
	}
}

func TestServerCacheControlNoStore(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/statsz", "/metrics", "/v1/actions"} {
		rec, _ := get(t, srv, path)
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", path, cc)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events", bytes.NewBufferString("")))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("POST /v1/events Cache-Control = %q, want no-store", cc)
	}
}

// TestServerOwnershipFilter pins the consumed-prefix retry contract: the
// batch stops at the first not-owned line, that line is NOT consumed,
// and Accepted+Rejected+Dropped tells the router where to resume.
func TestServerOwnershipFilter(t *testing.T) {
	engine, srv := newTestServer(t, Config{Shards: 2})
	mine, theirs := testBank(1), testBank(2)
	srv.SetOwnership(7, func(key uint64) bool { return key == mine.BankKey() })

	// owned, owned, foreign, owned — the trailing owned line must not land.
	body := jsonlBody(t,
		uerAt(mine, 1, 1), uerAt(mine, 2, 2), uerAt(theirs, 1, 3), uerAt(mine, 3, 4))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/events", body))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mixed batch = %d, want 503: %s", rec.Code, rec.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.NotOwned != 1 || res.Epoch != 7 {
		t.Fatalf("mixed batch result %+v, want accepted=2 notOwned=1 epoch=7", res)
	}
	if consumed := res.Accepted + res.Rejected + res.Dropped; consumed != 2 {
		t.Fatalf("consumed prefix = %d, want 2", consumed)
	}
	if err := engine.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := engine.Session(theirs); ok {
		t.Error("foreign bank leaked past the ownership filter")
	}
	if st, ok := engine.Session(mine); !ok || st.Events != 2 {
		t.Errorf("owned bank session = %+v, want 2 events", st)
	}

	// A fully-owned batch succeeds and still reports the epoch.
	res = post(t, srv, jsonlBody(t, uerAt(mine, 3, 5)))
	if res.Accepted != 1 || res.NotOwned != 0 || res.Epoch != 7 {
		t.Fatalf("owned batch result %+v, want accepted=1 epoch=7", res)
	}

	// Back to standalone: the foreign bank is accepted again.
	srv.SetOwnership(0, nil)
	res = post(t, srv, jsonlBody(t, uerAt(theirs, 1, 6)))
	if res.Accepted != 1 || res.Epoch != 0 {
		t.Fatalf("standalone result %+v, want accepted=1 epoch=0", res)
	}
}
