package ecc

import (
	"testing"
	"testing/quick"

	"cordial/internal/xrand"
)

func TestColumnsDistinctOddWeight(t *testing.T) {
	seen := make(map[uint8]bool)
	for i, c := range columns {
		if w := popcount8(c); w < 3 || w%2 == 0 {
			t.Errorf("column %d = %08b has weight %d, want odd ≥3", i, c, w)
		}
		if seen[c] {
			t.Errorf("column %d = %08b duplicated", i, c)
		}
		seen[c] = true
	}
}

func TestEncodeDecodeCleanRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		res := Decode(Encode(data))
		return res.Outcome == OutcomeClean && res.Data == data && res.FlippedBit == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitErrorsAllCorrected(t *testing.T) {
	// Property: every single-bit flip anywhere in the 72-bit codeword is
	// corrected and the original data recovered.
	data := uint64(0xdeadbeefcafef00d)
	cw := Encode(data)
	for pos := 0; pos < TotalBits; pos++ {
		res := Decode(FlipBits(cw, pos))
		if res.Outcome != OutcomeCorrected {
			t.Fatalf("flip at %d: outcome %v, want corrected", pos, res.Outcome)
		}
		if res.Data != data {
			t.Fatalf("flip at %d: data %#x not recovered", pos, res.Data)
		}
		if res.FlippedBit != pos {
			t.Fatalf("flip at %d: reported position %d", pos, res.FlippedBit)
		}
	}
}

func TestSingleBitPropertyRandomData(t *testing.T) {
	f := func(data uint64, pos uint8) bool {
		p := int(pos) % TotalBits
		res := Decode(FlipBits(Encode(data), p))
		return res.Outcome == OutcomeCorrected && res.Data == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBitErrorsAllDetected(t *testing.T) {
	// Property: every distinct pair of flips is flagged uncorrectable —
	// never silently miscorrected into "clean".
	data := uint64(0x0123456789abcdef)
	cw := Encode(data)
	r := xrand.New(5)
	for trial := 0; trial < 3000; trial++ {
		i := r.Intn(TotalBits)
		j := r.Intn(TotalBits)
		if i == j {
			continue
		}
		res := Decode(FlipBits(cw, i, j))
		if res.Outcome != OutcomeUncorrectable {
			t.Fatalf("double flip (%d,%d): outcome %v, want uncorrectable", i, j, res.Outcome)
		}
	}
}

func TestAllDoubleBitPairsExhaustive(t *testing.T) {
	data := uint64(0xaaaa5555aaaa5555)
	cw := Encode(data)
	for i := 0; i < TotalBits; i++ {
		for j := i + 1; j < TotalBits; j++ {
			res := Decode(FlipBits(cw, i, j))
			if res.Outcome != OutcomeUncorrectable {
				t.Fatalf("pair (%d,%d) outcome %v, want uncorrectable", i, j, res.Outcome)
			}
		}
	}
}

func TestFlipBitsInvolution(t *testing.T) {
	f := func(data uint64, a, b uint8) bool {
		pa, pb := int(a)%TotalBits, int(b)%TotalBits
		cw := Encode(data)
		again := FlipBits(FlipBits(cw, pa, pb), pb, pa)
		return again == cw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBits(72) did not panic")
		}
	}()
	FlipBits(Encode(0), TotalBits)
}

func TestClassify(t *testing.T) {
	tests := []struct {
		outcome Outcome
		access  AccessKind
		want    Class
	}{
		{OutcomeClean, AccessDemand, ClassNone},
		{OutcomeClean, AccessPatrolScrub, ClassNone},
		{OutcomeCorrected, AccessDemand, ClassCE},
		{OutcomeCorrected, AccessPatrolScrub, ClassCE},
		{OutcomeUncorrectable, AccessPatrolScrub, ClassUEO},
		{OutcomeUncorrectable, AccessDemand, ClassUER},
	}
	for _, tc := range tests {
		if got := Classify(tc.outcome, tc.access); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.outcome, tc.access, got, tc.want)
		}
	}
}

func TestReadFaulty(t *testing.T) {
	tests := []struct {
		name   string
		flips  []int
		access AccessKind
		want   Class
	}{
		{"clean demand", nil, AccessDemand, ClassNone},
		{"single bit demand", []int{5}, AccessDemand, ClassCE},
		{"single bit scrub", []int{70}, AccessPatrolScrub, ClassCE},
		{"double bit scrub", []int{3, 44}, AccessPatrolScrub, ClassUEO},
		{"double bit demand", []int{3, 44}, AccessDemand, ClassUER},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, res := ReadFaulty(0x1122334455667788, tc.flips, tc.access)
			if got != tc.want {
				t.Fatalf("class = %v, want %v", got, tc.want)
			}
			if tc.want == ClassNone || tc.want == ClassCE {
				if res.Data != 0x1122334455667788 {
					t.Fatalf("data not recovered: %#x", res.Data)
				}
			}
		})
	}
}

func TestClassStringsAndParse(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassCE, ClassUEO, ClassUER} {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("ParseClass(%q) = %v", c.String(), got)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Fatal("ParseClass accepted bogus input")
	}
}

func TestIsUncorrectable(t *testing.T) {
	for c, want := range map[Class]bool{
		ClassNone: false, ClassCE: false, ClassUEO: true, ClassUER: true,
	} {
		if got := c.IsUncorrectable(); got != want {
			t.Errorf("%v.IsUncorrectable() = %v", c, got)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeClean:         "clean",
		OutcomeCorrected:     "corrected",
		OutcomeUncorrectable: "uncorrectable",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessPatrolScrub.String() != "patrol-scrub" || AccessDemand.String() != "demand" {
		t.Fatal("unexpected AccessKind strings")
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeSingleError(b *testing.B) {
	cw := FlipBits(Encode(0xdeadbeef), 17)
	for i := 0; i < b.N; i++ {
		_ = Decode(cw)
	}
}
