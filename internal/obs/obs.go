// Package obs is the serving stack's observability substrate: a small,
// dependency-free metrics registry — monotonic counters, gauges (stored or
// computed at scrape time) and fixed-bucket histograms — that renders the
// Prometheus text exposition format. The stream engine, the WAL and the
// HTTP front-end all register their instruments here, and both /metrics
// and /statsz read from the same instruments, so the two endpoints can
// never drift apart.
//
// Design constraints, in order:
//
//   - Hot-path updates are lock-free (atomics only). A counter increment
//     on the ingest path must cost no more than the atomic it replaces.
//   - Instruments are nil-safe: methods on a nil *Counter, *Gauge or
//     *Histogram are no-ops, so instrumented packages (e.g. internal/wal)
//     need no "is metrics enabled" branches at call sites.
//   - Rendering is deterministic: families appear in registration order,
//     series within a family in label order, so exposition output is
//     directly comparable in golden tests.
//
// Metric and label names are validated on registration (programmer errors
// panic, like a malformed struct tag would). Registering the same name
// with the same type returns the existing family, and the same label set
// returns the existing instrument, so independent components may share a
// series without coordination.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name="value" pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefLatencyBuckets spans 100ns to 10s on a 1-2.5-5 ladder — wide enough
// for both in-process event handling (the binary ingest path decodes and
// enqueues in well under a microsecond, so the ladder starts below it) and
// fsync-bound WAL appends (milliseconds to seconds). Values are in seconds,
// the Prometheus base unit for durations.
var DefLatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7,
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one rendered time series: an instrument plus its labels.
type series struct {
	labels []Label
	key    string // canonical label signature, for dedupe and sort
	render func(w io.Writer, name, labelStr string)
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind
	// series sorted by label signature; insertion keeps order.
	series []*series
	byKey  map[string]any // label signature -> instrument
}

// Registry holds metric families and renders them. The zero value is not
// usable; construct with NewRegistry. All methods are safe for concurrent
// use, but registration is expected at component start-up, not on hot
// paths.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName is the Prometheus metric-name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*);
// labels use the same minus the colon.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && !label:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// labelKey canonicalises a label set: sorted, escaped, joined. It doubles
// as the rendered label string (minus braces) for plain instruments.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes for label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// register finds or creates the family and the series slot. It returns the
// existing instrument when the same name+labels was registered before, or
// stores create()'s result otherwise.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, create func() any) any {
	if !validName(name, false) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key, true) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]any)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	key := labelKey(labels)
	if inst, ok := f.byKey[key]; ok {
		return inst
	}
	inst := create()
	f.byKey[key] = inst
	s := &series{labels: labels, key: key}
	switch v := inst.(type) {
	case *Counter:
		s.render = v.renderTo
	case *Gauge:
		s.render = v.renderTo
	case *gaugeFunc:
		s.render = v.renderTo
	case *Histogram:
		s.render = v.renderTo
	}
	// Keep series sorted by label signature for deterministic output.
	at := sort.Search(len(f.series), func(i int) bool { return f.series[i].key >= key })
	f.series = append(f.series, nil)
	copy(f.series[at+1:], f.series[at:])
	f.series[at] = s
	return inst
}

// Counter registers (or returns) a monotonic counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.register(name, help, kindCounter, labels, func() any { return &Counter{} })
	c, ok := inst.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q series exists with a different instrument type", name))
	}
	return c
}

// Gauge registers (or returns) a stored gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.register(name, help, kindGauge, labels, func() any { return &Gauge{} })
	g, ok := inst.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q series exists with a different instrument type", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the natural shape for "current queue depth" or "live sessions",
// where the source of truth already lives elsewhere. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.register(name, help, kindGauge, labels, func() any { return &gaugeFunc{fn: fn} })
	if _, ok := inst.(*gaugeFunc); !ok {
		panic(fmt.Sprintf("obs: metric %q series exists with a different instrument type", name))
	}
}

// Histogram registers (or returns) a fixed-bucket histogram. buckets are
// upper bounds in ascending order; +Inf is implicit. An empty slice takes
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %d", name, i))
		}
	}
	inst := r.register(name, help, kindHistogram, labels, func() any { return newHistogram(buckets) })
	h, ok := inst.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q series exists with a different instrument type", name))
	}
	return h
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE comments, then one line per series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ew := &errWriter{w: w}
	for _, f := range r.families {
		fmt.Fprintf(ew, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(ew, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			s.render(ew, f.name, s.key)
		}
	}
	return ew.err
}

// escapeHelp applies the exposition-format escapes for HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// errWriter latches the first write error so rendering loops stay flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// seriesName renders "name{labels}" (or bare name without labels).
func seriesName(name, labelStr string) string {
	if labelStr == "" {
		return name
	}
	return name + "{" + labelStr + "}"
}

// ---- counter ---------------------------------------------------------------

// Counter is a monotonically increasing uint64. The zero value is ready;
// methods on a nil receiver are no-ops (reads return 0).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) renderTo(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s %d\n", seriesName(name, labelStr), c.Value())
}

// ---- gauge -----------------------------------------------------------------

// Gauge is a float64 that can go up and down. The zero value is ready;
// methods on a nil receiver are no-ops (reads return 0).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) renderTo(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, labelStr), formatFloat(g.Value()))
}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	fn func() float64
}

func (g *gaugeFunc) renderTo(w io.Writer, name, labelStr string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, labelStr), formatFloat(g.fn()))
}

// ---- histogram -------------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets and tracks
// an exact count and sum. Observe is lock-free; a scrape may split an
// observation between the bucket counters and the sum (the usual
// Prometheus histogram relaxation) but every per-series value is itself
// consistent and monotone. Methods on a nil receiver are no-ops.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket ladders are ~20 wide and the branch predictor
	// does well on latency-shaped data; a binary search is not faster
	// until ~64 buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since t0 — the common shape for
// latency instrumentation.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

func (h *Histogram) renderTo(w io.Writer, name, labelStr string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatFloat(b) + `"`
		ls := le
		if labelStr != "" {
			ls = labelStr + "," + le
		}
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", ls), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	ls := `le="+Inf"`
	if labelStr != "" {
		ls = labelStr + "," + ls
	}
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", ls), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", labelStr), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", labelStr), h.count.Load())
}

// ValidateLine checks one non-comment exposition line for the shape a
// Prometheus scraper requires: a valid metric name, an optional
// well-formed {label="value",...} block, and a parseable float sample.
// Exported for tests that assert /metrics output stays scrapeable.
func ValidateLine(line string) error {
	rest := line
	name := rest
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		close := strings.LastIndexByte(rest, '}')
		if close < i {
			return fmt.Errorf("obs: unterminated label block")
		}
		if err := validateLabelBlock(rest[i+1 : close]); err != nil {
			return err
		}
		rest = strings.TrimPrefix(rest[close+1:], " ")
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf("obs: no sample value")
		}
		name, rest = rest[:sp], rest[sp+1:]
	}
	if !validName(name, false) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	rest = strings.TrimSpace(rest)
	if rest == "+Inf" || rest == "-Inf" || rest == "NaN" {
		return nil
	}
	if _, err := strconv.ParseFloat(rest, 64); err != nil {
		return fmt.Errorf("obs: invalid sample value %q", rest)
	}
	return nil
}

// validateLabelBlock checks the inside of a {...} block.
func validateLabelBlock(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || !validName(s[:eq], true) {
			return fmt.Errorf("obs: invalid label name in %q", s)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("obs: unquoted label value in %q", s)
		}
		s = s[1:]
		// Scan to the closing quote, honouring escapes.
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return fmt.Errorf("obs: unterminated label value")
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("obs: expected comma between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

// atomicFloat is a CAS-updated float64.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }
