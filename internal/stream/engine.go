// Package stream is Cordial's fleet-scale online prediction engine: the
// piece that turns the trained pipeline into a service. Events from the
// whole fleet are ingested concurrently, routed to one of N shards by
// packed bank address, and replayed through per-bank strategy sessions —
// the exact same sessions the offline evaluator drives — so the online
// feature vectors match offline training bit-for-bit. The moment a bank
// crosses the first-3-UER budget the pipeline fires and the engine emits
// typed mitigation Actions (row-spare / bank-spare) on a bounded output
// channel.
//
// Concurrency model: each shard owns its bank-session map and is mutated
// only by its single consumer goroutine; a per-shard mutex makes the map
// readable for inspection (GET /v1/banks/{addr}) without stopping the
// world. Ingest is wait-free apart from the queue send; per-bank event
// order is preserved because one bank always hashes to the same shard and
// shard queues are FIFO.
//
// Per-event inference cost: a UER on an aggregation bank triggers one
// window prediction, which the pipeline issues as a single PredictBatch
// over all 16 block vectors — served by mltree's flattened
// struct-of-arrays trees rather than per-block pointer chasing — so the
// shard consumer's critical path stays short under burst load.
package stream

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/obs"
	"cordial/internal/sparing"
)

// IngestPolicy selects what Ingest does when a shard queue is full.
type IngestPolicy int

const (
	// IngestBlock applies backpressure: Ingest waits for queue space.
	IngestBlock IngestPolicy = iota
	// IngestDrop sheds load: Ingest drops the event, counts it, and
	// returns ErrDropped.
	IngestDrop
)

// String names the policy.
func (p IngestPolicy) String() string {
	switch p {
	case IngestBlock:
		return "block"
	case IngestDrop:
		return "drop"
	default:
		return fmt.Sprintf("IngestPolicy(%d)", int(p))
	}
}

// Sentinel errors returned by Ingest.
var (
	// ErrClosed is returned by Ingest after Close.
	ErrClosed = errors.New("stream: engine closed")
	// ErrDropped is returned under IngestDrop when a full queue sheds the
	// event.
	ErrDropped = errors.New("stream: event dropped (shard queue full)")
)

// Config configures an Engine. Strategy is required; everything else has a
// serviceable default.
type Config struct {
	// Strategy supplies per-bank prediction sessions (normally
	// core.CordialStrategy over a fitted pipeline). Shorthand for a
	// single-model engine: when Models is nil, the engine wraps Strategy in
	// StaticModels. Ignored when Models is set.
	Strategy core.Strategy
	// Models resolves strategies by version — the swap point of the online
	// retraining loop. New sessions bind the source's active model at
	// creation; SwapModel changes what "active" means without touching
	// existing sessions. Normally a *registry.Registry.
	Models ModelSource
	// Geometry validates incoming addresses. Zero means the active
	// topology profile's geometry.
	Geometry hbm.Geometry
	// Shards is the number of session shards (and consumer goroutines).
	// Zero means GOMAXPROCS.
	Shards int
	// QueueDepth is the per-shard input queue capacity. Zero means 1024.
	QueueDepth int
	// ActionBuffer is the output channel capacity. Zero means 4096. When
	// the consumer falls behind, the oldest queued action is dropped to
	// admit the newest (counted in EngineStats.ActionsDropped) so a slow
	// reader can never wedge a shard.
	ActionBuffer int
	// Policy selects the full-queue behaviour of Ingest.
	Policy IngestPolicy
	// Durability configures the WAL + snapshot layer. The zero value (no
	// Dir) runs the engine purely in memory; with a Dir the Strategy must
	// implement core.DurableStrategy so sessions can be checkpointed.
	Durability DurabilityConfig
	// DeadLetterPath, when set, appends quarantined events (events whose
	// processing panicked) as JSON lines to this file. Quarantine happens
	// with or without the file; the file preserves the evidence.
	DeadLetterPath string
	// DeadLetterRotation caps the quarantine trail on disk (file-size
	// rotation plus count/age pruning of rotated files). The zero value
	// applies the package defaults; it only matters with DeadLetterPath.
	DeadLetterRotation DeadLetterRotation
	// Metrics is the registry the engine registers its instruments in.
	// Nil means a fresh private registry — instrumentation is always on
	// (the instruments ARE the engine's counters); passing a registry only
	// controls where they are visible. Exposed via Engine.Metrics for the
	// HTTP /metrics endpoint.
	Metrics *obs.Registry
	// Logger receives the engine's structured diagnostics (retention
	// failures, quarantines). Nil means slog.Default().
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Models == nil && c.Strategy != nil {
		c.Models = StaticModels(c.Strategy)
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.ActionBuffer == 0 {
		c.ActionBuffer = 4096
	}
	if c.Geometry == (hbm.Geometry{}) {
		c.Geometry = hbm.ActiveProfile().Geometry
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Models == nil {
		return fmt.Errorf("stream: no model source (set Strategy or Models)")
	}
	active, _ := c.Models.ActiveModel()
	if active == nil {
		return fmt.Errorf("stream: model source has no active model")
	}
	if c.Shards < 1 {
		return fmt.Errorf("stream: shard count %d < 1", c.Shards)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("stream: queue depth %d < 1", c.QueueDepth)
	}
	if c.ActionBuffer < 1 {
		return fmt.Errorf("stream: action buffer %d < 1", c.ActionBuffer)
	}
	if c.Policy != IngestBlock && c.Policy != IngestDrop {
		return fmt.Errorf("stream: invalid ingest policy %d", int(c.Policy))
	}
	if c.Durability.Dir != "" {
		if _, ok := active.(core.DurableStrategy); !ok {
			return fmt.Errorf("stream: durability configured but strategy %T cannot restore sessions", active)
		}
	}
	return c.Geometry.Validate()
}

// Action is one mitigation the engine recommends, emitted on the output
// channel the moment the pipeline decides it.
type Action struct {
	// Kind is the mitigation mechanism (row-spare or bank-spare).
	Kind sparing.ActionKind
	// Bank is the affected bank.
	Bank hbm.BankAddress
	// Rows lists newly isolated rows for row-granular actions; nil for
	// bank sparing. Rows already isolated by an earlier action on the same
	// bank are not re-emitted.
	Rows []int
	// Class is the failure class the pipeline assigned the bank.
	Class faultsim.Class
	// Time is the timestamp of the event that triggered the action.
	Time time.Time
}

// SessionStats is a point-in-time snapshot of one bank's session, for
// inspection endpoints and operator tooling.
type SessionStats struct {
	// Bank is the session's bank address.
	Bank hbm.BankAddress
	// Events counts all events routed to the bank.
	Events int
	// UEREvents counts UER-class events.
	UEREvents int
	// DistinctUERRows counts distinct rows with at least one UER.
	DistinctUERRows int
	// Classified reports whether the pattern stage has fired.
	Classified bool
	// Class is the assigned failure class (valid when Classified).
	Class faultsim.Class
	// BankSpared reports whether a bank-spare action was emitted.
	BankSpared bool
	// RowsIsolated counts distinct rows isolated by emitted actions.
	RowsIsolated int
	// Actions counts actions emitted for the bank.
	Actions int
	// FirstEvent and LastEvent bound the session's observed window.
	FirstEvent, LastEvent time.Time
	// StateBytes approximates the resident bytes of the session's
	// incremental feature state; zero once released. The state holds no
	// event buffer, so this is bounded by the bank's distinct error rows,
	// not by Events.
	StateBytes int
	// StateRows is the tracked-row entry count of the feature state (the
	// only part of it that grows at all).
	StateRows int
	// StateReleased reports that the session dropped its feature state
	// after a terminal decision (bank spared).
	StateReleased bool
	// ModelVersion is the model version this session is pinned to: the
	// active version when the session was created. A swap never rebinds a
	// live session, so during a mixed-version window this differs from the
	// engine's active version.
	ModelVersion uint64
	// Degraded reports that an event for this bank panicked during
	// processing: the event was quarantined and the session no longer
	// feeds events to its strategy session (its state may be inconsistent).
	Degraded bool
}

// EngineStats is a point-in-time snapshot of the whole engine.
type EngineStats struct {
	// Uptime is the time since New.
	Uptime time.Duration
	// Ingested counts events accepted by Ingest (enqueued to a shard).
	Ingested uint64
	// Dropped counts events shed at ingest under IngestDrop.
	Dropped uint64
	// Processed counts events fully run through a session.
	Processed uint64
	// ActionsEmitted counts actions delivered to the output channel.
	ActionsEmitted uint64
	// ActionsDropped counts actions evicted from a full output channel.
	ActionsDropped uint64
	// SessionsLive is the number of live per-bank sessions.
	SessionsLive int
	// Shards is the configured shard count.
	Shards int
	// IngestRate is accepted events per second since New.
	IngestRate float64
	// QueueDepths is the current per-shard input queue occupancy.
	QueueDepths []int
	// IngestWait samples the time Ingest spent enqueueing (the
	// backpressure signal).
	IngestWait LatencySnapshot
	// Process samples per-event session time (feature extraction +
	// model inference).
	Process LatencySnapshot
	// FeatureStateBytes approximates the resident bytes of all live
	// sessions' incremental feature state. Each session's state is bounded
	// by its bank's distinct error rows (never by event count), so this is
	// the operator-facing proof of the bounded-memory claim.
	FeatureStateBytes int64
	// FeatureStateRows is the total tracked-row entries across live
	// sessions' feature states.
	FeatureStateRows int64
	// SessionsReleased counts sessions that dropped their feature state
	// after a terminal decision (bank spared).
	SessionsReleased int
	// ShardStateBytes is the per-shard breakdown of FeatureStateBytes.
	ShardStateBytes []int64
	// Quarantined counts events whose processing panicked; each was logged
	// to the dead-letter file (when configured) and its session degraded.
	Quarantined uint64
	// SessionsDegraded is the number of sessions in the degraded state.
	SessionsDegraded int
	// WALEnabled reports whether the durability layer is active.
	WALEnabled bool
	// WALAppended counts records journaled since this process opened the
	// WAL; WALSegments and WALNextLSN describe the journal itself.
	WALAppended uint64
	WALSegments int
	WALNextLSN  uint64
	// LastSnapshotSeq is the sequence of the most recent snapshot written
	// or recovered from (zero when none).
	LastSnapshotSeq uint64
	// RecoveredSessions and RecoveredEvents describe the boot-time
	// recovery: sessions restored from the snapshot and WAL records
	// replayed (including ones skipped as already applied).
	RecoveredSessions int
	RecoveredEvents   uint64
	// RetentionErrors counts failed post-snapshot retention steps (journal
	// truncation or snapshot pruning). Non-zero means disk usage is growing
	// past the configured retention until a later snapshot succeeds.
	RetentionErrors uint64
	// WALAppendErrors counts Ingest calls that failed to journal their
	// event; LastWALAppendError is the most recent failure's message
	// (empty once an append succeeds again).
	WALAppendErrors    uint64
	LastWALAppendError string
	// ActiveModelVersion is the model version new sessions currently bind;
	// ModelSwaps counts SwapModel calls that took effect since boot.
	ActiveModelVersion uint64
	ModelSwaps         uint64
	// Shadow describes the in-progress shadow evaluation (Active false
	// when none is running).
	Shadow ShadowStats
}

// Engine is the sharded online prediction engine. Construct with New; all
// exported methods are safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	start  time.Time

	actions    chan Action
	metrics    engineMetrics
	ingestWait latencySampler
	batchPool  sync.Pool // *batchScratch, sized to the shard count

	// walAppendErrs / lastAppendErr track journal-append failures for
	// readiness: a serving daemon that cannot persist intake is not ready.
	walAppendErrs atomic.Uint64
	lastAppendErr atomic.Value // string; "" once an append succeeds again

	// epochs is the copy-on-write model epoch table ([]modelEpoch, oldest
	// first); the tail is what new sessions bind. Written by SwapModel
	// (under snapMu) and boot-time recovery; read lock-free on the session
	// creation path.
	epochs atomic.Value

	// shadow holds the current *shadowEval (nil-typed when none) and
	// shadowGen numbers evaluations so stale per-session twins are inert.
	shadow    atomic.Value
	shadowGen atomic.Uint64

	// classifications counts pattern-stage classification flips (a session
	// deciding its bank's class for the first time); the lifecycle manager
	// uses it as an activity signal for drift-check scheduling.
	classifications atomic.Uint64

	// Durability state; all nil/zero when no WAL directory is configured.
	wal               *walJournal
	snapMu            sync.Mutex // serialises Snapshot
	snapSeq           uint64     // under snapMu
	recoveredSessions int        // set before consumers start
	recoveredEvents   uint64

	dead *deadLetterLog

	mu     sync.RWMutex // guards closed against in-flight Ingest sends
	closed bool
	wg     sync.WaitGroup
}

// queued is one event in a shard queue, tagged with its WAL position (0
// when the journal is disabled).
type queued struct {
	ev  mcelog.Event
	lsn uint64
}

// shard is one session partition, consumed by a single goroutine. The
// counters are per-shard obs instruments (labelled shard="i") registered
// by registerMetrics; they are the only copy of these counts.
type shard struct {
	in          *eventRing
	processed   *obs.Counter
	dropped     *obs.Counter
	quarantined *obs.Counter
	process     latencySampler

	// ingestMu serialises journal-append + enqueue so queue order equals
	// LSN order within the shard (the invariant replay depends on). Only
	// taken on the durable ingest path.
	ingestMu sync.Mutex

	mu       sync.Mutex // guards sessions for cross-goroutine inspection
	sessions map[uint64]*bankSession
	// appliedLSN is the highest journal position folded into this shard's
	// sessions; the minimum across shards bounds WAL retention.
	appliedLSN uint64
	// Running feature-state totals over this shard's sessions, maintained
	// by O(1) per-event deltas in process (also under mu).
	stateBytes int64
	stateRows  int64
	released   int
	degraded   int
}

// bankSession couples a strategy session with the bookkeeping the engine
// layers on top. Mutated only under the owning shard's mutex.
type bankSession struct {
	bank    hbm.BankAddress
	sess    core.Session
	stats   SessionStats
	uerRows map[int]struct{}
	spared  map[int]struct{}
	// lastLSN is the newest journal record applied to this session; replay
	// skips records at or below it. Tracked per session (not per shard) so
	// recovery stays correct even if the shard count changes across
	// restarts.
	lastLSN uint64
	// version is the model version the session is pinned to (mirrored in
	// stats.ModelVersion; kept as its own field because it also rides in
	// snapshots and must survive stats rewrites).
	version uint64
	// shadow is the candidate-model twin while a shadow evaluation that
	// saw this session's birth is running; nil otherwise.
	shadow *shadowSession
}

// New validates cfg (after defaulting) and starts the shard consumers.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		shards:  make([]*shard, cfg.Shards),
		start:   time.Now(),
		actions: make(chan Action, cfg.ActionBuffer),
	}
	for i := range e.shards {
		e.shards[i] = &shard{
			in:       newEventRing(cfg.QueueDepth),
			sessions: make(map[uint64]*bankSession),
		}
	}
	e.batchPool.New = func() any {
		return &batchScratch{
			groups: make([][]queued, len(e.shards)),
			drops:  make([]int, len(e.shards)),
			pos:    make([]int, len(e.shards)),
		}
	}
	e.lastAppendErr.Store("")
	e.shadow.Store((*shadowEval)(nil))
	// The boot epoch is whatever the model source calls active right now.
	// Recovery may replace it (snapshot header + replayed swap records)
	// with the epochs that were actually in force before the crash.
	bootStrat, bootVer := cfg.Models.ActiveModel()
	e.epochs.Store([]modelEpoch{{version: bootVer, strategy: bootStrat}})
	// Instruments must exist before recovery (the WAL registers its own on
	// Open) and before the first Ingest.
	e.registerMetrics()
	if cfg.DeadLetterPath != "" {
		dl, err := openDeadLetterLog(cfg.DeadLetterPath, cfg.DeadLetterRotation)
		if err != nil {
			return nil, err
		}
		e.dead = dl
	}
	// Recovery (snapshot restore + WAL replay) runs before the consumers
	// start, so replayed and live events can never interleave on a shard.
	if cfg.Durability.Dir != "" {
		if err := e.recoverDurable(); err != nil {
			if e.dead != nil {
				e.dead.close()
			}
			return nil, err
		}
	}
	for _, s := range e.shards {
		s := s
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			buf := make([]queued, consumerBatch)
			for {
				n, ok := s.in.popBatch(buf)
				if !ok {
					return
				}
				for i := 0; i < n; i++ {
					e.process(s, buf[i])
				}
			}
		}()
	}
	return e, nil
}

// consumerBatch is how many queued events a shard consumer drains per
// ring round: large enough to amortise the lock, small enough that the
// queue-depth gauge stays honest under load.
const consumerBatch = 256

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// shardFor routes a bank key to its shard. Bank keys are packed addresses
// with the row/column bits zeroed, so the low bits carry no entropy; a
// splitmix64 finaliser spreads them before the modulo.
func (e *Engine) shardFor(bankKey uint64) *shard {
	return e.shards[e.shardIndex(bankKey)]
}

// shardIndex is shardFor's index form (batch ingest groups by index).
func (e *Engine) shardIndex(bankKey uint64) int {
	return int(mix64(bankKey) % uint64(len(e.shards)))
}

// mix64 is the splitmix64 finaliser, a fast full-avalanche bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ingest routes one event to its bank's shard. Under IngestBlock a full
// queue applies backpressure; under IngestDrop the event is shed and
// ErrDropped returned. Ingest returns ErrClosed after Close. Events for
// the same bank ingested from the same goroutine are processed in order.
// With durability configured the event is journaled before it is queued:
// a nil return means the event is on stable storage (subject to the fsync
// policy) and will survive a crash.
func (e *Engine) Ingest(ev mcelog.Event) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	s := e.shardFor(ev.Addr.BankKey())
	if e.wal != nil {
		return e.ingestDurable(s, ev)
	}
	switch e.cfg.Policy {
	case IngestDrop:
		if !s.in.tryPush(queued{ev: ev}) {
			s.dropped.Inc()
			return ErrDropped
		}
	default:
		t0 := time.Now()
		if !s.in.push(queued{ev: ev}) {
			return ErrClosed
		}
		e.ingestWait.observe(time.Since(t0))
	}
	e.metrics.ingested.Inc()
	return nil
}

// batchScratch is the reusable working set of one IngestBatch call:
// per-shard event groups, per-shard drop counts, and the journal payload
// buffer. Pooled so the steady-state batch ingest path allocates nothing.
type batchScratch struct {
	groups [][]queued
	drops  []int
	pos    []int // per-shard cursor for arrival-order LSN assignment
	enc    []byte
}

// IngestBatch routes a batch of already-validated events, the bulk
// counterpart of Ingest for the binary wire path. Events are grouped by
// shard (preserving input order, so per-bank order is preserved), and
// with durability configured the whole admitted batch is journaled with
// one WAL append — one buffered write, at most one fsync — before any
// event is queued: a nil error means every accepted event is on stable
// storage, exactly Ingest's contract amortised. Under IngestDrop the
// portion of a shard's group that does not fit its queue is shed (and
// counted in dropped) before journaling, so shed events are never
// resurrected by replay. A non-nil error means no event of the batch was
// accepted.
func (e *Engine) IngestBatch(events []mcelog.Event) (accepted, dropped int, err error) {
	if len(events) == 0 {
		return 0, 0, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, 0, ErrClosed
	}
	sc := e.batchPool.Get().(*batchScratch)
	defer e.releaseScratch(sc)
	for _, ev := range events {
		si := e.shardIndex(ev.Addr.BankKey())
		sc.groups[si] = append(sc.groups[si], queued{ev: ev})
	}
	if e.wal != nil {
		return e.ingestBatchDurable(events, sc)
	}
	for si, g := range sc.groups {
		if len(g) == 0 {
			continue
		}
		s := e.shards[si]
		switch e.cfg.Policy {
		case IngestDrop:
			pushed := s.in.tryPushBatch(g)
			if shed := len(g) - pushed; shed > 0 {
				s.dropped.Add(uint64(shed))
				dropped += shed
			}
			accepted += pushed
		default:
			t0 := time.Now()
			if !s.in.pushBatch(g) {
				break // closing: events already queued still process
			}
			e.ingestWait.observe(time.Since(t0))
			accepted += len(g)
		}
	}
	e.metrics.ingested.Add(uint64(accepted))
	return accepted, dropped, nil
}

// releaseScratch resets and pools a batch working set.
func (e *Engine) releaseScratch(sc *batchScratch) {
	for i := range sc.groups {
		sc.groups[i] = sc.groups[i][:0]
		sc.drops[i] = 0
		sc.pos[i] = 0
	}
	sc.enc = sc.enc[:0]
	e.batchPool.Put(sc)
}

// IngestLog feeds every event of a log through Ingest, returning the
// number accepted and the first non-drop error.
func (e *Engine) IngestLog(l *mcelog.Log) (accepted int, err error) {
	for i := 0; i < l.Len(); i++ {
		switch ierr := e.Ingest(l.At(i)); {
		case ierr == nil:
			accepted++
		case errors.Is(ierr, ErrDropped):
			// Counted by the engine; load shedding is not a caller error.
		default:
			return accepted, ierr
		}
	}
	return accepted, nil
}

// process runs one event through its bank session and emits any resulting
// actions. Runs on the shard's consumer goroutine only.
func (e *Engine) process(s *shard, q queued) {
	out, dead := e.apply(s, q)
	s.processed.Inc()
	if dead != nil {
		e.quarantine(s, dead)
	}
	for _, a := range out {
		e.emit(a)
	}
}

// apply folds one event into its bank session under the shard lock and
// returns the actions to emit. A panic anywhere in the strategy session is
// caught: the event is returned as a dead-letter entry, the session is
// marked degraded (it stops feeding its strategy session, whose state may
// be mid-mutation), and the shard keeps consuming — one poisoned event
// must never take the daemon down.
func (e *Engine) apply(s *shard, q queued) (out []Action, dead *DeadLetter) {
	ev := q.ev
	key := ev.Addr.BankKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	bs, ok := s.sessions[key]
	if !ok {
		bank := hbm.BankOf(ev.Addr)
		// The swap point: a session binds the model epoch in force when it
		// is born and stays pinned to it for life. Live events (and the
		// non-durable path, lsn 0) bind the current active epoch; replayed
		// events bind the epoch at their journal position, so recovery
		// recreates each session under the same version it was born under.
		ep := e.activeEpoch()
		if q.lsn != 0 {
			ep = e.epochFor(q.lsn)
		}
		bs = &bankSession{
			bank:    bank,
			sess:    ep.strategy.NewSession(bank),
			version: ep.version,
			uerRows: make(map[int]struct{}),
			spared:  make(map[int]struct{}),
		}
		bs.stats.Bank = bank
		bs.stats.FirstEvent = ev.Time
		bs.stats.ModelVersion = ep.version
		// A bank whose history starts while a shadow evaluation is running
		// gets a candidate twin that will see the same full history.
		if se := e.loadShadow(); se != nil {
			bs.shadow = se.newShadowSession(bank)
		}
		s.sessions[key] = bs
	}
	if q.lsn != 0 {
		if q.lsn <= bs.lastLSN {
			return nil, nil // replay of a record already in the snapshot
		}
		// Recorded before OnEvent so a poisoned event is never replayed
		// into its session again after a restart.
		bs.lastLSN = q.lsn
		if q.lsn > s.appliedLSN {
			s.appliedLSN = q.lsn
		}
	}
	if bs.stats.Degraded {
		// The strategy session is quarantined; keep the observational
		// bookkeeping so /statsz still reflects the bank's traffic.
		bs.stats.Events++
		bs.stats.LastEvent = ev.Time
		return nil, nil
	}
	// The deferred recover runs before the deferred unlock (LIFO), so the
	// shard lock is always released exactly once, panic or not.
	defer func() {
		if r := recover(); r != nil {
			bs.stats.Degraded = true
			s.degraded++
			out = nil
			dead = &DeadLetter{
				Time:   ev.Time,
				Bank:   bs.bank.String(),
				Addr:   ev.Addr.Pack(),
				Row:    ev.Addr.Row,
				Class:  ev.Class.String(),
				LSN:    q.lsn,
				Reason: fmt.Sprint(r),
			}
		}
	}()
	prevBytes, prevRows, prevReleased := bs.stats.StateBytes, bs.stats.StateRows, bs.stats.StateReleased
	prevClassified := bs.stats.Classified
	// Shadow scoring needs the primary's pre-fold coverage: was this UER's
	// row (or the whole bank) already isolated when the event arrived?
	var primCoveredUER bool
	if bs.shadow != nil && ev.Class == ecc.ClassUER {
		if bs.stats.BankSpared {
			primCoveredUER = true
		} else if _, done := bs.spared[ev.Addr.Row]; done {
			primCoveredUER = true
		}
	}
	out = foldEvent(bs, ev, &s.process)
	s.stateBytes += int64(bs.stats.StateBytes - prevBytes)
	s.stateRows += int64(bs.stats.StateRows - prevRows)
	if bs.stats.StateReleased && !prevReleased {
		s.released++
	}
	if !prevClassified && bs.stats.Classified {
		e.classifications.Add(1)
	}
	if bs.shadow != nil {
		if se := e.loadShadow(); se != nil && bs.shadow.gen == se.gen {
			primSpareBank := false
			primFresh := 0
			for _, a := range out {
				switch a.Kind {
				case sparing.ActionBankSpare:
					primSpareBank = true
				case sparing.ActionRowSpare:
					primFresh += len(a.Rows)
				}
			}
			se.foldShadow(bs.shadow, ev, primCoveredUER, primSpareBank, primFresh)
		} else {
			bs.shadow = nil // evaluation over or superseded; release the twin
		}
	}
	return out, nil
}

// foldEvent runs one event through a bank session: strategy OnEvent, the
// engine's session bookkeeping (counts, class, feature-state footprint)
// and action derivation with per-bank row dedupe. It mutates only the
// session, never shard-level state, so it serves both the shard consumer
// path (apply, holding the shard lock) and cluster handoff's suffix
// replay over sessions that are not installed in any shard yet. The
// caller owns panic handling: a panic from the strategy session unwinds
// through here with bs.stats partially updated, and the caller must mark
// the session degraded.
func foldEvent(bs *bankSession, ev mcelog.Event, proc *latencySampler) (out []Action) {
	t0 := time.Now()
	d := bs.sess.OnEvent(ev)
	if proc != nil {
		proc.observe(time.Since(t0))
	}

	bs.stats.Events++
	bs.stats.LastEvent = ev.Time
	if ev.Class == ecc.ClassUER {
		bs.stats.UEREvents++
		if _, seen := bs.uerRows[ev.Addr.Row]; !seen {
			bs.uerRows[ev.Addr.Row] = struct{}{}
			bs.stats.DistinctUERRows++
		}
	}
	if cs, ok := bs.sess.(core.ClassifiedSession); ok && !bs.stats.Classified {
		if class, fired := cs.Class(); fired {
			bs.stats.Classified = true
			bs.stats.Class = class
		}
	}
	if is, ok := bs.sess.(core.InstrumentedSession); ok {
		fp, released := is.StateFootprint()
		bs.stats.StateBytes = fp.ApproxBytes
		bs.stats.StateRows = fp.TrackedRows
		bs.stats.StateReleased = released
	}

	if d.SpareBank && !bs.stats.BankSpared {
		bs.stats.BankSpared = true
		bs.stats.Actions++
		out = append(out, Action{
			Kind:  sparing.ActionBankSpare,
			Bank:  bs.bank,
			Class: bs.stats.Class,
			Time:  ev.Time,
		})
	}
	if len(d.IsolateRows) > 0 {
		// Emit each row at most once per bank: repeat predictions of an
		// already-isolated row are no-ops, exactly as the offline sparing
		// engine treats them. The same dedupe makes recovery's at-least-once
		// replay convergent: re-derived actions for already-spared rows are
		// suppressed here.
		var fresh []int
		for _, r := range d.IsolateRows {
			if _, done := bs.spared[r]; !done {
				bs.spared[r] = struct{}{}
				fresh = append(fresh, r)
			}
		}
		if len(fresh) > 0 {
			bs.stats.RowsIsolated += len(fresh)
			bs.stats.Actions++
			out = append(out, Action{
				Kind:  sparing.ActionRowSpare,
				Bank:  bs.bank,
				Rows:  fresh,
				Class: bs.stats.Class,
				Time:  ev.Time,
			})
		}
	}
	return out
}

// emit delivers an action, evicting the oldest queued action when the
// buffer is full so a slow consumer can never block a shard.
func (e *Engine) emit(a Action) {
	for {
		select {
		case e.actions <- a:
			e.metrics.actionsEmitted.Inc()
			return
		default:
		}
		select {
		case <-e.actions:
			e.metrics.actionsDropped.Inc()
		default:
		}
	}
}

// Actions returns the engine's output channel. It is closed by Close after
// all in-flight events have drained.
func (e *Engine) Actions() <-chan Action { return e.actions }

// Session returns a snapshot of one bank's session state.
func (e *Engine) Session(bank hbm.BankAddress) (SessionStats, bool) {
	key := bank.BankKey()
	s := e.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	bs, ok := s.sessions[key]
	if !ok {
		return SessionStats{}, false
	}
	return bs.stats, true
}

// Sessions snapshots every live session's stats, sorted by bank key. The
// admin surface uses it to report per-session pinned model versions.
func (e *Engine) Sessions() []SessionStats {
	var out []SessionStats
	for _, s := range e.shards {
		s.mu.Lock()
		for _, bs := range s.sessions {
			out = append(out, bs.stats)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Bank.BankKey() < out[j].Bank.BankKey()
	})
	return out
}

// SessionCount returns the number of live sessions.
func (e *Engine) SessionCount() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		n += len(s.sessions)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a point-in-time snapshot of the engine's counters, queue
// depths and latency distributions. The counters are read back from the
// obs instruments, so this is the same data GET /metrics renders.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Uptime:         time.Since(e.start),
		Ingested:       e.metrics.ingested.Value(),
		ActionsEmitted: e.metrics.actionsEmitted.Value(),
		ActionsDropped: e.metrics.actionsDropped.Value(),
		Shards:         len(e.shards),
		QueueDepths:    make([]int, len(e.shards)),
		IngestWait:     e.ingestWait.snapshot(),
	}
	st.ShardStateBytes = make([]int64, len(e.shards))
	var proc latencySampler
	for i, s := range e.shards {
		st.Processed += s.processed.Value()
		st.Dropped += s.dropped.Value()
		st.Quarantined += s.quarantined.Value()
		st.QueueDepths[i] = s.in.length()
		s.mu.Lock()
		st.SessionsLive += len(s.sessions)
		st.ShardStateBytes[i] = s.stateBytes
		st.FeatureStateBytes += s.stateBytes
		st.FeatureStateRows += s.stateRows
		st.SessionsReleased += s.released
		st.SessionsDegraded += s.degraded
		s.mu.Unlock()
		proc.merge(&s.process)
	}
	st.Process = proc.snapshot()
	st.ActiveModelVersion = e.ActiveModelVersion()
	st.ModelSwaps = e.metrics.modelSwaps.Value()
	st.Shadow = e.ShadowStats()
	st.RecoveredSessions = e.recoveredSessions
	st.RecoveredEvents = e.recoveredEvents
	st.RetentionErrors = e.metrics.retentionErrors.Value()
	st.WALAppendErrors = e.walAppendErrs.Load()
	if s, ok := e.lastAppendErr.Load().(string); ok {
		st.LastWALAppendError = s
	}
	if e.wal != nil {
		st.WALEnabled = true
		st.WALAppended = e.wal.Appended()
		st.WALSegments = e.wal.Segments()
		st.WALNextLSN = e.wal.NextLSN()
		e.snapMu.Lock()
		st.LastSnapshotSeq = e.snapSeq
		e.snapMu.Unlock()
	}
	if secs := st.Uptime.Seconds(); secs > 0 {
		st.IngestRate = float64(st.Ingested) / secs
	}
	return st
}

// ReadyReasons reports why the engine is not ready to serve, one reason
// per condition; an empty slice means ready. Liveness (/healthz) is a
// different question — a degraded engine is alive but should be rotated
// out of intake, which is exactly what a 503 from /readyz tells the load
// balancer.
func (e *Engine) ReadyReasons() []string {
	var reasons []string
	degraded := 0
	for _, s := range e.shards {
		s.mu.Lock()
		degraded += s.degraded
		s.mu.Unlock()
	}
	if degraded > 0 {
		reasons = append(reasons, fmt.Sprintf("%d session(s) degraded after processing panics", degraded))
	}
	if msg, ok := e.lastAppendErr.Load().(string); ok && msg != "" {
		reasons = append(reasons, "last WAL append failed: "+msg)
	}
	return reasons
}

// Drain blocks until every accepted event has been processed (or the
// context budget d elapses; d <= 0 means wait forever). It does not stop
// the engine — use it to checkpoint a replay before reading stats.
func (e *Engine) Drain(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		var processed uint64
		for _, s := range e.shards {
			processed += s.processed.Value()
		}
		if processed >= e.metrics.ingested.Value() {
			return nil
		}
		if d > 0 && time.Now().After(deadline) {
			return fmt.Errorf("stream: drain timed out after %v (%d of %d processed)",
				d, processed, e.metrics.ingested.Value())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Close stops intake, drains every shard queue through the sessions, then
// closes the Actions channel. Safe to call more than once. Close does NOT
// snapshot: a plain Close is deliberately equivalent to a crash (the WAL
// carries everything), so tests and operators exercise the same recovery
// path either way. Call Snapshot first for a fast subsequent boot.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		s.in.close()
	}
	e.wg.Wait()
	close(e.actions)
	var err error
	if e.wal != nil {
		err = e.wal.Close()
	}
	if e.dead != nil {
		if cerr := e.dead.close(); err == nil {
			err = cerr
		}
	}
	return err
}
