package stream

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/mcelog"
)

// ModelSource resolves prediction strategies by version. It is the seam
// between the engine and model ownership: the engine never holds "the"
// strategy, it asks the source which version is active when a session is
// born and resolves pinned versions again during recovery. The registry
// package implements this over its artefact store; StaticModels adapts a
// single fixed strategy (the pre-registry configuration) to the same shape.
type ModelSource interface {
	// ActiveModel returns the strategy new sessions should bind and its
	// version number. A nil strategy means the source has nothing to serve
	// (the engine refuses to start in that case).
	ActiveModel() (core.Strategy, uint64)
	// ModelByVersion resolves a specific version, for rebinding sessions
	// that were pinned to it before a restart or handoff.
	ModelByVersion(version uint64) (core.Strategy, error)
}

// staticVersion is the version a StaticModels source reports.
const staticVersion = 1

// staticSource adapts one fixed strategy to the ModelSource shape.
type staticSource struct {
	strategy core.Strategy
}

// StaticModels wraps a single strategy as a ModelSource with version 1.
// ModelByVersion is deliberately tolerant — it returns the strategy for
// ANY version — so snapshots taken under a registry-backed source still
// recover when an operator points the daemon at a plain -models file, and
// cluster handoffs between mixed configurations keep working. The version
// numbers in that case are provenance labels, not distinct models.
func StaticModels(s core.Strategy) ModelSource {
	return &staticSource{strategy: s}
}

func (s *staticSource) ActiveModel() (core.Strategy, uint64) { return s.strategy, staticVersion }

func (s *staticSource) ModelByVersion(uint64) (core.Strategy, error) { return s.strategy, nil }

// modelEpoch is one reign of one model version: from journal position
// sinceLSN (exclusive — the LSN of the swap record itself) until the next
// epoch begins. Sessions created at LSN L bind the last epoch with
// sinceLSN < L, so replay recreates each session under the same version it
// was born under.
type modelEpoch struct {
	version  uint64
	sinceLSN uint64
	strategy core.Strategy
}

// epochList returns the current epoch table (immutable; installEpoch
// replaces the slice wholesale).
func (e *Engine) epochList() []modelEpoch {
	return e.epochs.Load().([]modelEpoch)
}

// activeEpoch is the epoch new sessions bind outside replay.
func (e *Engine) activeEpoch() modelEpoch {
	eps := e.epochList()
	return eps[len(eps)-1]
}

// epochFor resolves the epoch in force at journal position lsn: the last
// epoch that began strictly before it. Positions at or before the first
// epoch's start (a snapshot-seeded epoch whose swap record was truncated)
// fall back to the first epoch.
func (e *Engine) epochFor(lsn uint64) modelEpoch {
	eps := e.epochList()
	for i := len(eps) - 1; i >= 0; i-- {
		if eps[i].sinceLSN < lsn {
			return eps[i]
		}
	}
	return eps[0]
}

// installEpoch inserts one epoch copy-on-write, keeping the table sorted
// by sinceLSN. Re-installing an epoch already present (a replayed swap
// record the snapshot header also seeded) is a no-op, which makes replay
// idempotent; a replayed swap OLDER than the seeded header epoch slots in
// before it, so epochFor stays correct for sessions born between the two.
// Callers serialise: SwapModel under snapMu, recovery before the
// consumers start.
func (e *Engine) installEpoch(ep modelEpoch) {
	old := e.epochList()
	idx := len(old)
	for i, x := range old {
		if x.sinceLSN == ep.sinceLSN && x.version == ep.version {
			return
		}
		if idx == len(old) && x.sinceLSN > ep.sinceLSN {
			idx = i
		}
	}
	next := make([]modelEpoch, 0, len(old)+1)
	next = append(next, old[:idx]...)
	next = append(next, ep)
	next = append(next, old[idx:]...)
	e.epochs.Store(next)
}

// seedEpochs replaces the whole table (snapshot-header recovery).
func (e *Engine) seedEpochs(ep modelEpoch) {
	e.epochs.Store([]modelEpoch{ep})
}

// strategyFor resolves a session's pinned version. Version 0 is the
// pre-versioning snapshot encoding ("whatever was active at boot") and
// resolves to the boot epoch.
func (e *Engine) strategyFor(version uint64) (core.Strategy, error) {
	if version == 0 {
		return e.epochList()[0].strategy, nil
	}
	for _, ep := range e.epochList() {
		if ep.version == version {
			return ep.strategy, nil
		}
	}
	return e.cfg.Models.ModelByVersion(version)
}

// resolveDurable is strategyFor for paths that must checkpoint the session
// afterwards (recovery, handoff import).
func (e *Engine) resolveDurable(version uint64) (core.DurableStrategy, error) {
	strat, err := e.strategyFor(version)
	if err != nil {
		return nil, err
	}
	ds, ok := strat.(core.DurableStrategy)
	if !ok {
		return nil, fmt.Errorf("stream: model version %d strategy %T cannot restore sessions", version, strat)
	}
	return ds, nil
}

// ---- swap records ----------------------------------------------------------

// A model swap is journaled like an event: a fixed 12-byte record, length-
// discriminated from the 17-byte event records sharing the journal. Replay
// re-installs the epoch at the same position, so sessions created after
// the swap rebind the same version they bound live.
const (
	swapRecordMagic = "CSWP"
	swapRecordSize  = 12
)

func encodeSwapRecord(version uint64) []byte {
	b := make([]byte, swapRecordSize)
	copy(b, swapRecordMagic)
	b[4] = byte(version)
	b[5] = byte(version >> 8)
	b[6] = byte(version >> 16)
	b[7] = byte(version >> 24)
	b[8] = byte(version >> 32)
	b[9] = byte(version >> 40)
	b[10] = byte(version >> 48)
	b[11] = byte(version >> 56)
	return b
}

// decodeSwapRecord reports whether a journal payload is a swap record and,
// if so, its model version.
func decodeSwapRecord(p []byte) (uint64, bool) {
	if len(p) != swapRecordSize || string(p[:4]) != swapRecordMagic {
		return 0, false
	}
	v := uint64(p[4]) | uint64(p[5])<<8 | uint64(p[6])<<16 | uint64(p[7])<<24 |
		uint64(p[8])<<32 | uint64(p[9])<<40 | uint64(p[10])<<48 | uint64(p[11])<<56
	return v, true
}

// SwapModel atomically makes a model version the one new sessions bind.
// Existing sessions keep their pinned version — a swap never rebinds live
// per-bank state, so verdict streams are never re-ordered mid-history.
//
// Ordering: the swap takes the snapshot mutex and then every shard's
// ingest mutex (ascending, the batch-ingest order), so (a) no event can be
// journaled concurrently — the swap record lands at a single well-defined
// position in every shard's intake order, and (b) no checkpoint can be
// encoded concurrently — a snapshot either fully precedes the swap (its
// header names the old version, the swap record is past its floor and
// replays) or fully follows it (its header names the new version). Without
// this exclusion a checkpoint could record the old active version while
// its retention floor advanced past the swap record, erasing the swap.
//
// Returns the journal position of the swap record (0 without durability).
func (e *Engine) SwapModel(version uint64) (uint64, error) {
	strat, err := e.cfg.Models.ModelByVersion(version)
	if err != nil {
		return 0, err
	}
	if strat == nil {
		return 0, fmt.Errorf("stream: model source returned no strategy for version %d", version)
	}
	if e.wal != nil {
		if _, ok := strat.(core.DurableStrategy); !ok {
			return 0, fmt.Errorf("stream: model version %d strategy %T cannot be used with durability", version, strat)
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	t0 := time.Now()
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	for _, s := range e.shards {
		s.ingestMu.Lock()
	}
	defer func() {
		for _, s := range e.shards {
			s.ingestMu.Unlock()
		}
	}()
	var since uint64
	if e.wal != nil {
		lsn, err := e.wal.Append(encodeSwapRecord(version))
		if err != nil {
			e.walAppendErrs.Add(1)
			e.lastAppendErr.Store(err.Error())
			return 0, fmt.Errorf("stream: journaling model swap: %w", err)
		}
		since = lsn
		e.installEpoch(modelEpoch{version: version, sinceLSN: since, strategy: strat})
	} else {
		// No journal, no replay: the table only needs to name the active
		// model, and repeated swaps (including rollbacks to an earlier
		// version) must not accumulate identical zero-LSN entries.
		e.seedEpochs(modelEpoch{version: version, strategy: strat})
	}
	e.metrics.modelSwaps.Inc()
	e.metrics.swapPauseDur.Observe(time.Since(t0).Seconds())
	e.cfg.Logger.Info("model swapped", "version", version, "lsn", since)
	return since, nil
}

// ActiveModelVersion returns the version new sessions currently bind.
func (e *Engine) ActiveModelVersion() uint64 {
	return e.activeEpoch().version
}

// PinnedVersionFloor returns the lowest model version any live session is
// pinned to (0 when no sessions exist). Registry pruning uses it to avoid
// deleting artefacts a running session might still need to recover under.
func (e *Engine) PinnedVersionFloor() uint64 {
	var floor uint64
	for _, s := range e.shards {
		s.mu.Lock()
		for _, bs := range s.sessions {
			if bs.version != 0 && (floor == 0 || bs.version < floor) {
				floor = bs.version
			}
		}
		s.mu.Unlock()
	}
	return floor
}

// ExportEvents decodes the journal's event records in [from, to) (the
// whole journal when to is 0), skipping swap records — the feed the online
// trainer retrains from.
func (e *Engine) ExportEvents(from, to uint64) ([]mcelog.Event, error) {
	if e.wal == nil {
		return nil, ErrNotDurable
	}
	if to == 0 {
		to = ^uint64(0)
	}
	recs, err := e.wal.ExportRange(from, to)
	if err != nil {
		return nil, err
	}
	out := make([]mcelog.Event, 0, len(recs))
	for _, rec := range recs {
		if _, isSwap := decodeSwapRecord(rec.Payload); isSwap {
			continue
		}
		ev, derr := decodeEventRecord(rec.Payload)
		if derr != nil {
			return nil, fmt.Errorf("stream: exporting journal record %d: %w", rec.LSN, derr)
		}
		out = append(out, ev)
	}
	return out, nil
}

// ---- live class mix --------------------------------------------------------

// RecentClassMix is the drift detector's live sample: the n most recently
// active UER banks, each labelled SPATIALLY from the UER rows its session
// has observed (faultsim.LabelPattern), and the resulting class counts.
// Spatial self-labels are deliberately model-independent — a drift test fed
// the classifier's own predictions would see phantom drift at every model
// swap and would inherit the incumbent's biases — and they are directly
// comparable to the active model's training ClassMix, which comes from the
// same labelling geometry.
func (e *Engine) RecentClassMix(n int) (map[faultsim.Class]int, int) {
	type cand struct {
		last  time.Time
		class faultsim.Class
	}
	var cands []cand
	for _, s := range e.shards {
		s.mu.Lock()
		for _, bs := range s.sessions {
			if len(bs.uerRows) == 0 {
				continue
			}
			rows := make([]int, 0, len(bs.uerRows))
			for r := range bs.uerRows {
				rows = append(rows, r)
			}
			p := faultsim.LabelPattern(e.cfg.Geometry, rows, nil)
			cands = append(cands, cand{last: bs.stats.LastEvent, class: faultsim.ClassOf(p)})
		}
		s.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].last.After(cands[j].last) })
	if n < len(cands) {
		cands = cands[:n]
	}
	out := make(map[faultsim.Class]int, len(faultsim.AllClasses))
	for _, c := range cands {
		out[c.class]++
	}
	return out, len(cands)
}

// ClassificationsTotal returns how many sessions have ever classified
// (monotone; drives drift-check scheduling).
func (e *Engine) ClassificationsTotal() uint64 {
	return e.classifications.Load()
}
