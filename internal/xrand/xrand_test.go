package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d vs %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("two Split children produced the same first draw")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
		seen[v] = true
	}
	for v := -3; v <= 3; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d in 1000 draws", v)
		}
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %g, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%g) mean = %g", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		if v := r.Poisson(100); v < 0 {
			t.Fatalf("Poisson returned negative %d", v)
		}
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(100, 1.2)
	counts := make([]int, 101)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Draw(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of [1,100]", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Fatalf("Zipf not skewed: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(37)
	weights := []float64{1, 0, 3, -2, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("zero/negative weights were chosen: %v", counts)
	}
	// Expected proportions 0.1, 0.3, 0.6 over indices 0, 2, 4.
	for i, want := range map[int]float64{0: 0.1, 2: 0.3, 4: 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %g, want ~%g", i, got, want)
		}
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	r := New(41)
	for _, tc := range []struct{ n, k int }{{10, 10}, {10, 3}, {1000, 5}, {5, 0}} {
		s := r.SampleInts(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("SampleInts(%d,%d) len = %d", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleInts(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(43)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestUint32AndInt63(t *testing.T) {
	r := New(50)
	seen := make(map[uint32]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("Uint32 produced only %d distinct values", len(seen))
	}
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestZipfMethod(t *testing.T) {
	r := New(51)
	for i := 0; i < 100; i++ {
		v := r.Zipf(50, 1.1)
		if v < 1 || v > 50 {
			t.Fatalf("Zipf = %d", v)
		}
	}
}

func TestShuffleGeneric(t *testing.T) {
	r := New(52)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[string]bool)
	for _, v := range s {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("Shuffle lost element %q", v)
		}
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := New(53)
	expectPanic("IntRange inverted", func() { r.IntRange(3, 2) })
	expectPanic("Exp zero rate", func() { r.Exp(0) })
	expectPanic("WeightedChoice empty", func() { r.WeightedChoice(nil) })
	expectPanic("WeightedChoice all-zero", func() { r.WeightedChoice([]float64{0, 0}) })
	expectPanic("SampleInts k>n", func() { r.SampleInts(2, 3) })
	expectPanic("Uint64n zero", func() { r.Uint64n(0) })
	expectPanic("NewZipf bad n", func() { NewZipf(0, 1) })
	expectPanic("NewZipf bad s", func() { NewZipf(5, 0) })
}
