// Command cordial-gen synthesises a fleet-scale HBM error log with ground
// truth, standing in for the proprietary BMC/MCE dataset of the paper.
//
// Usage:
//
//	cordial-gen -seed 1 -uer-banks 300 -benign-banks 2200 \
//	    -log fleet.mcelog -format binary -truth truth.json
//
// The log is written in the mcelog binary format (or JSON Lines with
// -format jsonl); the ground truth (per-bank pattern and UER rows) is
// written as JSON for cordial-train and offline analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-gen:", err)
		os.Exit(1)
	}
}

// parseWeights turns "single=15,double=5,scattered=70" into a pattern
// sampling distribution. Patterns left out get weight 0.
func parseWeights(s string) (faultsim.PatternWeights, error) {
	names := map[string]faultsim.Pattern{
		"single":    faultsim.PatternSingleRow,
		"double":    faultsim.PatternDoubleRow,
		"half":      faultsim.PatternHalfTotalRow,
		"scattered": faultsim.PatternScattered,
		"wholecol":  faultsim.PatternWholeColumn,
	}
	w := make(faultsim.PatternWeights)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad weight %q (want name=value)", pair)
		}
		p, ok := names[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown pattern %q (want single, double, half, scattered or wholecol)", name)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad weight value %q for %s", val, name)
		}
		w[p] = f
	}
	return w, nil
}

func run() error {
	var (
		seed        = flag.Uint64("seed", 1, "deterministic generation seed")
		uerBanks    = flag.Int("uer-banks", 300, "banks given a UER failure pattern")
		benignBanks = flag.Int("benign-banks", 2200, "banks with only CE/UEO noise")
		logPath     = flag.String("log", "fleet.mcelog", "output error-log path")
		format      = flag.String("format", "binary", "log format: binary, jsonl, stream or wire")
		truthPath   = flag.String("truth", "truth.json", "output ground-truth path (empty to skip)")
		weights     = flag.String("weights", "", "failure-pattern mix as name=weight pairs, e.g. single=15,double=5,scattered=70 (default: the paper's field distribution; use this to simulate a drifted regime)")
		topology    = flag.String("topology", hbm.ActiveProfile().Name, "topology profile: "+strings.Join(hbm.ProfileNames(), ", "))
	)
	flag.Parse()

	prof, err := hbm.SetActiveProfile(*topology)
	if err != nil {
		return err
	}
	spec := trace.DefaultSpec(prof.Geometry)
	spec.Seed = *seed
	spec.UERBanks = *uerBanks
	spec.BenignBanks = *benignBanks
	if *weights != "" {
		w, err := parseWeights(*weights)
		if err != nil {
			return err
		}
		spec.Weights = w
	}

	fleet, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	logFile, err := os.Create(*logPath)
	if err != nil {
		return err
	}
	defer logFile.Close()
	switch *format {
	case "binary":
		err = fleet.Log.WriteBinary(logFile)
	case "jsonl":
		err = fleet.Log.WriteJSONL(logFile)
	case "stream":
		w := mcelog.NewStreamWriter(logFile)
		for _, e := range fleet.Log.Events() {
			if err := w.Write(e); err != nil {
				return err
			}
		}
		err = w.Flush()
	case "wire":
		// CRC-framed ingest wire format: the output is a valid request body
		// for POST /v1/events.bin on cordial-serve and cordial-router.
		enc := mcelog.NewFrameEncoder(logFile, 0)
		for _, e := range fleet.Log.Events() {
			if err := enc.Add(e); err != nil {
				return err
			}
		}
		err = enc.Flush()
	default:
		return fmt.Errorf("unknown format %q (want binary, jsonl, stream or wire)", *format)
	}
	if err != nil {
		return err
	}
	if err := logFile.Close(); err != nil {
		return err
	}

	if *truthPath != "" {
		truthFile, err := os.Create(*truthPath)
		if err != nil {
			return err
		}
		defer truthFile.Close()
		enc := json.NewEncoder(truthFile)
		if err := enc.Encode(fleet.Faults); err != nil {
			return err
		}
		if err := truthFile.Close(); err != nil {
			return err
		}
	}

	fmt.Printf("generated %d events (%d faulty banks, %d benign banks) -> %s\n",
		fleet.Log.Len(), len(fleet.Faults), len(fleet.BenignBankKeys), *logPath)
	return nil
}
