// Package mcelog models the machine-check error log a baseboard management
// controller (BMC) exports: a stream of timestamped, addressed, classified
// memory-error events. It is the ingestion substrate for everything above
// it — the empirical-study statistics, the feature extractors and the
// Cordial pipeline all consume these records.
//
// The package provides a typed Event record, an in-memory Log with the
// query operations the paper's analyses need (sorting, windowing, grouping
// by bank and by micro-level), and two interchange codecs: JSON Lines for
// interoperability and a compact checksummed binary format for volume.
package mcelog

import (
	"fmt"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// ErrBits encodes the intra-word error pattern of one event, below the
// row/column granularity the address carries: which DQ pins (low byte)
// and which burst positions (high byte) observed corrupted bits in the
// faulting read. "Exploring Error Bits for Memory Failure Prediction"
// shows this pattern separates benign scattered upsets from the
// aggregated pin faults that precede uncorrectable errors; the feature
// extractors accumulate it per bank. Zero means the pattern was not
// reported — BMCs that do not expose syndrome detail emit zero, and all
// codecs preserve it as absent rather than inventing a pattern.
type ErrBits uint16

// MakeErrBits composes an error-bit pattern from a DQ-pin mask and a
// burst-position mask.
func MakeErrBits(dq, burst uint8) ErrBits { return ErrBits(uint16(burst)<<8 | uint16(dq)) }

// DQ returns the mask of DQ pins that saw corrupted bits.
func (b ErrBits) DQ() uint8 { return uint8(b) }

// Burst returns the mask of burst positions that saw corrupted bits.
func (b ErrBits) Burst() uint8 { return uint8(b >> 8) }

// IsZero reports whether no error-bit pattern was recorded.
func (b ErrBits) IsZero() bool { return b == 0 }

// Event is a single logged memory-error observation.
type Event struct {
	// Time is the moment the error was observed.
	Time time.Time
	// Addr locates the error down to row/column granularity.
	Addr hbm.Address
	// Class is the ECC classification (CE, UEO or UER).
	Class ecc.Class
	// Bits is the intra-word error-bit pattern, zero when unreported.
	Bits ErrBits
}

// Timestamp sanity bounds for ingested events. The binary wire record
// carries raw int64 unix-nanos, so a flipped high bit or a poisoned
// producer yields timestamps centuries away from any real observation;
// such events would silently skew windowed analyses and session ageing
// if admitted. The bounds are deliberately loose — decades of slack on
// both sides of any plausible deployment — so they only ever reject
// garbage, never clock skew.
var (
	// MinEventTime is the oldest admissible event timestamp (the Unix
	// epoch: no BMC logged an HBM error before 1970).
	MinEventTime = time.Unix(0, 0).UTC()
	// MaxEventTime is the exclusive upper bound on event timestamps.
	MaxEventTime = time.Date(2200, time.January, 1, 0, 0, 0, 0, time.UTC)
)

// ValidateTime checks a timestamp against the ingestion sanity bounds.
func ValidateTime(t time.Time) error {
	if t.IsZero() {
		return fmt.Errorf("mcelog: event has zero timestamp")
	}
	if t.Before(MinEventTime) {
		return fmt.Errorf("mcelog: event timestamp %v predates %v", t, MinEventTime)
	}
	if !t.Before(MaxEventTime) {
		return fmt.Errorf("mcelog: event timestamp %v is implausibly far in the future (>= %v)", t, MaxEventTime)
	}
	return nil
}

// Validate reports whether the event is well-formed under the geometry.
func (e Event) Validate(g hbm.Geometry) error {
	if e.Class != ecc.ClassCE && e.Class != ecc.ClassUEO && e.Class != ecc.ClassUER {
		return fmt.Errorf("mcelog: event class %v is not a loggable error class", e.Class)
	}
	if err := ValidateTime(e.Time); err != nil {
		return err
	}
	if err := e.Addr.Validate(g); err != nil {
		return fmt.Errorf("mcelog: event address: %w", err)
	}
	return nil
}

// Before reports whether e was observed before other, breaking time ties by
// packed address so sorting is total and deterministic.
func (e Event) Before(other Event) bool {
	if !e.Time.Equal(other.Time) {
		return e.Time.Before(other.Time)
	}
	if pa, pb := e.Addr.Pack(), other.Addr.Pack(); pa != pb {
		return pa < pb
	}
	if e.Class != other.Class {
		return e.Class < other.Class
	}
	return e.Bits < other.Bits
}

// Log is an in-memory collection of events. The zero value is an empty log
// ready to use. Log is not safe for concurrent mutation.
type Log struct {
	events []Event
}

// NewLog returns a log pre-sized for n events.
func NewLog(n int) *Log {
	return &Log{events: make([]Event, 0, n)}
}

// FromEvents builds a log from a copy of the given events.
func FromEvents(events []Event) *Log {
	cp := make([]Event, len(events))
	copy(cp, events)
	return &Log{events: cp}
}

// Append adds events to the log.
func (l *Log) Append(events ...Event) {
	l.events = append(l.events, events...)
}

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the log's events in their current order.
func (l *Log) Events() []Event {
	cp := make([]Event, len(l.events))
	copy(cp, l.events)
	return cp
}

// At returns the i-th event in current order.
func (l *Log) At(i int) Event { return l.events[i] }

// Sort orders the log by (time, address, class), in place, deterministically.
func (l *Log) Sort() {
	sort.SliceStable(l.events, func(i, j int) bool {
		return l.events[i].Before(l.events[j])
	})
}

// IsSorted reports whether the log is already in (time, address, class) order.
func (l *Log) IsSorted() bool {
	return sort.SliceIsSorted(l.events, func(i, j int) bool {
		return l.events[i].Before(l.events[j])
	})
}

// FilterClass returns a new log containing only events of the given classes.
func (l *Log) FilterClass(classes ...ecc.Class) *Log {
	want := make(map[ecc.Class]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	out := &Log{}
	for _, e := range l.events {
		if want[e.Class] {
			out.events = append(out.events, e)
		}
	}
	return out
}

// Window returns a new log with events in [from, to).
func (l *Log) Window(from, to time.Time) *Log {
	out := &Log{}
	for _, e := range l.events {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out.events = append(out.events, e)
		}
	}
	return out
}

// GroupByBank partitions the log's events by bank, preserving their current
// relative order within each bank.
func (l *Log) GroupByBank() map[uint64][]Event {
	groups := make(map[uint64][]Event)
	for _, e := range l.events {
		k := e.Addr.BankKey()
		groups[k] = append(groups[k], e)
	}
	return groups
}

// BankKeys returns the distinct bank keys present in the log, sorted.
func (l *Log) BankKeys() []uint64 {
	seen := make(map[uint64]bool)
	for _, e := range l.events {
		seen[e.Addr.BankKey()] = true
	}
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CountByClass tallies events per error class.
func (l *Log) CountByClass() map[ecc.Class]int {
	counts := make(map[ecc.Class]int, 3)
	for _, e := range l.events {
		counts[e.Class]++
	}
	return counts
}

// EntitiesWithClass returns the number of distinct entities at the given
// micro-level that logged at least one event of the given class. This is the
// counting primitive behind the paper's Table II.
func (l *Log) EntitiesWithClass(level hbm.Level, class ecc.Class) int {
	seen := make(map[uint64]struct{})
	for _, e := range l.events {
		if e.Class == class {
			seen[e.Addr.EntityKey(level)] = struct{}{}
		}
	}
	return len(seen)
}

// Entities returns the number of distinct entities at the given level that
// logged any event.
func (l *Log) Entities(level hbm.Level) int {
	seen := make(map[uint64]struct{})
	for _, e := range l.events {
		seen[e.Addr.EntityKey(level)] = struct{}{}
	}
	return len(seen)
}

// Merge returns a new sorted log containing the events of both logs.
func Merge(a, b *Log) *Log {
	out := NewLog(a.Len() + b.Len())
	out.events = append(out.events, a.events...)
	out.events = append(out.events, b.events...)
	out.Sort()
	return out
}

// Dedupe removes consecutive duplicate events (same instant, address and
// class) from a sorted log, returning the number removed. Run Sort first for
// global dedupe. Times are compared with Time.Equal, not ==, so events from
// different sources (parsed vs generated) deduplicate correctly.
func (l *Log) Dedupe() int {
	if len(l.events) == 0 {
		return 0
	}
	same := func(a, b Event) bool {
		return a.Time.Equal(b.Time) && a.Addr == b.Addr && a.Class == b.Class && a.Bits == b.Bits
	}
	w := 1
	removed := 0
	for i := 1; i < len(l.events); i++ {
		if same(l.events[i], l.events[i-1]) {
			removed++
			continue
		}
		l.events[w] = l.events[i]
		w++
	}
	l.events = l.events[:w]
	return removed
}

// Span returns the time range [first, last] covered by a sorted log. ok is
// false for an empty log.
func (l *Log) Span() (first, last time.Time, ok bool) {
	if len(l.events) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return l.events[0].Time, l.events[len(l.events)-1].Time, true
}
