package mltree

import (
	"math"
	"testing"

	"cordial/internal/xrand"
)

// signalNoise builds a binary task where only feature 0 carries signal and
// features 1..dim-1 are pure noise.
func signalNoise(seed uint64, n, dim int) *Dataset {
	r := xrand.New(seed)
	ds := &Dataset{Names: make([]string, dim)}
	for j := 0; j < dim; j++ {
		ds.Names[j] = "f" + string(rune('0'+j))
	}
	for i := 0; i < n; i++ {
		label := i % 2
		row := make([]float64, dim)
		row[0] = float64(label)*4 + r.Normal(0, 1)
		for j := 1; j < dim; j++ {
			row[j] = r.Normal(0, 1)
		}
		ds.Features = append(ds.Features, row)
		ds.Labels = append(ds.Labels, label)
	}
	return ds
}

func TestSplitImportanceFindsSignalFeature(t *testing.T) {
	ds := signalNoise(1, 400, 5)
	for _, model := range []Classifier{
		NewTree(TreeConfig{MaxDepth: 6}, nil),
		NewForest(ForestConfig{NumTrees: 20, Seed: 1}),
		NewGBDT(GBDTConfig{Rounds: 20, Seed: 1}),
		NewHistGBDT(HistGBDTConfig{Rounds: 20, Seed: 1}),
	} {
		if err := model.Fit(ds); err != nil {
			t.Fatalf("%T: %v", model, err)
		}
		imps, err := SplitImportance(model, ds.Names)
		if err != nil {
			t.Fatalf("%T: %v", model, err)
		}
		if imps[0].Feature != 0 {
			t.Errorf("%T: top feature = %d (%s), want 0", model, imps[0].Feature, imps[0].Name)
		}
		total := 0.0
		for _, imp := range imps {
			if imp.Score < 0 {
				t.Errorf("%T: negative importance %g", model, imp.Score)
			}
			total += imp.Score
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%T: importances sum to %g", model, total)
		}
	}
}

func TestSplitImportanceLeafOnlyModel(t *testing.T) {
	ds := &Dataset{Features: [][]float64{{1}, {1}}, Labels: []int{0, 0}}
	tree := NewTree(TreeConfig{}, nil)
	if err := tree.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := SplitImportance(tree, nil); err == nil {
		t.Fatal("splitless model accepted")
	}
}

func TestPermutationImportanceFindsSignalFeature(t *testing.T) {
	ds := signalNoise(2, 400, 4)
	forest := NewForest(ForestConfig{NumTrees: 20, Seed: 2})
	if err := forest.Fit(ds); err != nil {
		t.Fatal(err)
	}
	imps, err := PermutationImportance(forest, ds, 3, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Feature != 0 {
		t.Fatalf("top permutation feature = %d, want 0", imps[0].Feature)
	}
	if imps[0].Score < 0.2 {
		t.Fatalf("signal feature importance = %g, want substantial", imps[0].Score)
	}
	// Noise features hover near zero.
	for _, imp := range imps[1:] {
		if imp.Score > 0.1 {
			t.Errorf("noise feature %d importance = %g", imp.Feature, imp.Score)
		}
	}
	// The original dataset must be unchanged.
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationImportanceErrors(t *testing.T) {
	ds := signalNoise(3, 50, 3)
	forest := NewForest(ForestConfig{NumTrees: 5, Seed: 3})
	if err := forest.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(forest, ds, 2, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := PermutationImportance(forest, &Dataset{}, 2, xrand.New(1)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := signalNoise(4, 300, 4)
	res, err := CrossValidate(ds, 5, xrand.New(5), func() Classifier {
		return NewTree(TreeConfig{MaxDepth: 4}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	totalTest := 0
	for _, f := range res.Folds {
		if f.TrainSize+f.TestSize != 300 {
			t.Fatalf("fold sizes %d+%d", f.TrainSize, f.TestSize)
		}
		totalTest += f.TestSize
	}
	if totalTest != 300 {
		t.Fatalf("test folds cover %d samples", totalTest)
	}
	// The task is nearly separable; CV accuracy must be high.
	if res.MeanAccuracy() < 0.9 {
		t.Fatalf("mean CV accuracy = %g", res.MeanAccuracy())
	}
	if res.StdAccuracy() < 0 || res.StdAccuracy() > 0.2 {
		t.Fatalf("std CV accuracy = %g", res.StdAccuracy())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	ds := signalNoise(5, 20, 2)
	factory := func() Classifier { return NewTree(TreeConfig{}, nil) }
	if _, err := CrossValidate(ds, 1, xrand.New(1), factory); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(ds, 30, xrand.New(1), factory); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := CrossValidate(ds, 5, nil, factory); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := CrossValidate(ds, 5, xrand.New(1), nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{{0, 0}, {-1, 0}, {4, 2}, {9, 3}, {2, math.Sqrt2}} {
		if got := sqrt(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("sqrt(%g) = %g", tc.in, got)
		}
	}
}
