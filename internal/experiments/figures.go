package experiments

import (
	"fmt"
	"io"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// Fig3a holds one example bank per failure pattern — the scatter data of the
// paper's Figure 3(a).
type Fig3a struct {
	Examples map[faultsim.Pattern][]ErrorPoint
}

// ErrorPoint is one plotted error address.
type ErrorPoint struct {
	Row    int
	Column int
	Class  ecc.Class
}

// RunFig3a generates one representative bank per pattern and extracts its
// error scatter.
func RunFig3a(p Params) (*Fig3a, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gen, err := faultsim.NewGenerator(p.Spec.Fault, xrand.New(p.Spec.Seed))
	if err != nil {
		return nil, err
	}
	out := &Fig3a{Examples: make(map[faultsim.Pattern][]ErrorPoint, len(faultsim.AllPatterns))}
	for _, pattern := range faultsim.AllPatterns {
		bf, err := gen.Generate(hbm.BankAddress{}, pattern)
		if err != nil {
			return nil, err
		}
		points := make([]ErrorPoint, 0, len(bf.Events))
		for _, e := range bf.Events {
			points = append(points, ErrorPoint{Row: e.Addr.Row, Column: e.Addr.Column, Class: e.Class})
		}
		out.Examples[pattern] = points
	}
	return out, nil
}

// Render writes one CSV block per pattern (pattern, row, column, class).
func (f *Fig3a) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "pattern,row,column,class"); err != nil {
		return err
	}
	for _, pattern := range faultsim.AllPatterns {
		for _, pt := range f.Examples[pattern] {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%s\n", pattern, pt.Row, pt.Column, pt.Class); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig3b is the bank failure pattern distribution — the paper's Figure 3(b).
type Fig3b struct {
	Shares []trace.PatternShare
}

// RunFig3b synthesises a fleet and tallies its ground-truth pattern mix.
func RunFig3b(p Params) (*Fig3b, error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, err
	}
	return &Fig3b{Shares: trace.PatternDistribution(fleet.Faults)}, nil
}

// Render writes the distribution table.
func (f *Fig3b) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Pattern\tBanks\tShare")
	for _, s := range f.Shares {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", s.Pattern, s.Count, pct(s.Share))
	}
	return tw.Flush()
}

// AggregationShare returns the combined share of the single-row and
// double-row clustering patterns. The paper reports 78.1% (= 68.2 + 9.9),
// counting the half-total-row variant separately in the pie even though the
// classifier treats it as double-row clustering.
func (f *Fig3b) AggregationShare() float64 {
	total := 0.0
	for _, s := range f.Shares {
		if s.Pattern == faultsim.PatternSingleRow || s.Pattern == faultsim.PatternDoubleRow {
			total += s.Share
		}
	}
	return total
}

// Fig4 is the chi-square locality curve over row-distance thresholds — the
// paper's Figure 4, peaking at 128 rows.
type Fig4 struct {
	Points []trace.LocalityPoint
}

// RunFig4 synthesises a fleet and computes the locality statistic for the
// paper's thresholds (4..2048, powers of two).
func RunFig4(p Params) (*Fig4, error) {
	fleet, err := p.fleet()
	if err != nil {
		return nil, err
	}
	points, err := trace.LocalityChiSquare(fleet.Log, p.Spec.Fault.Geometry.RowsPerBank, trace.DefaultThresholds())
	if err != nil {
		return nil, err
	}
	return &Fig4{Points: points}, nil
}

// Render writes the curve as a table.
func (f *Fig4) Render(w io.Writer) error {
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "Row Distance Threshold\tChi-Squared Value\tObserved Within\tExpected Within")
	for _, pt := range f.Points {
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%s\n", pt.Threshold, pt.ChiSquare, pct(pt.Observed), pct(pt.Expected))
	}
	return tw.Flush()
}

// Peak returns the threshold with the maximum statistic.
func (f *Fig4) Peak() int { return trace.PeakThreshold(f.Points) }
