// Package stats provides the statistical machinery behind the paper's
// empirical study: descriptive statistics, histograms, and chi-square tests
// (goodness-of-fit and contingency) with p-values computed from the
// regularised incomplete gamma function. It is dependency-free and operates
// on plain float64 slices.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics invoked on empty data.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance of xs. It requires at
// least two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs ≥2 observations, got %d", len(xs))
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Histogram is a fixed-width binning of observations over [Lo, Hi). Values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi). It returns an error for a non-positive bin count or an empty
// range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%g,%g) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // floating-point edge at Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// ChiSquareGoodnessOfFit returns the chi-square statistic and degrees of
// freedom for observed counts against expected counts. Cells with expected
// value zero but non-zero observed count make the statistic +Inf; cells with
// both zero are skipped (and reduce the degrees of freedom).
func ChiSquareGoodnessOfFit(observed, expected []float64) (stat float64, df int, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: observed has %d cells, expected %d", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return 0, 0, fmt.Errorf("stats: chi-square needs ≥2 cells, got %d", len(observed))
	}
	used := 0
	for i := range observed {
		o, e := observed[i], expected[i]
		if e < 0 || o < 0 {
			return 0, 0, fmt.Errorf("stats: negative count in cell %d", i)
		}
		if e == 0 {
			if o != 0 {
				return math.Inf(1), len(observed) - 1, nil
			}
			continue
		}
		d := o - e
		stat += d * d / e
		used++
	}
	if used < 2 {
		return 0, 0, errors.New("stats: fewer than 2 usable cells")
	}
	return stat, used - 1, nil
}

// ChiSquareContingency returns the chi-square statistic and degrees of
// freedom for an r×c contingency table of counts, testing independence of
// rows and columns.
func ChiSquareContingency(table [][]float64) (stat float64, df int, err error) {
	r := len(table)
	if r < 2 {
		return 0, 0, fmt.Errorf("stats: contingency table needs ≥2 rows, got %d", r)
	}
	c := len(table[0])
	if c < 2 {
		return 0, 0, fmt.Errorf("stats: contingency table needs ≥2 columns, got %d", c)
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i, row := range table {
		if len(row) != c {
			return 0, 0, fmt.Errorf("stats: row %d has %d cells, want %d", i, len(row), c)
		}
		for j, v := range row {
			if v < 0 {
				return 0, 0, fmt.Errorf("stats: negative count at (%d,%d)", i, j)
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0, errors.New("stats: contingency table is all zeros")
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			e := rowSum[i] * colSum[j] / total
			if e == 0 {
				continue
			}
			d := table[i][j] - e
			stat += d * d / e
		}
	}
	return stat, (r - 1) * (c - 1), nil
}

// ChiSquarePValue returns P(X ≥ stat) for a chi-square distribution with df
// degrees of freedom: the upper regularised incomplete gamma Q(df/2, stat/2).
func ChiSquarePValue(stat float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: degrees of freedom must be positive, got %d", df)
	}
	if stat < 0 {
		return 0, fmt.Errorf("stats: chi-square statistic must be non-negative, got %g", stat)
	}
	if math.IsInf(stat, 1) {
		return 0, nil
	}
	return upperIncompleteGammaRegularized(float64(df)/2, stat/2), nil
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) using the
// series expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes §6.2).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// lowerGammaSeries computes P(a, x) by series expansion (x < a+1).
func lowerGammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperGammaContinuedFraction computes Q(a, x) by the Lentz continued
// fraction (x ≥ a+1).
func upperGammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
