// Package chaos is the fleet-scale stress harness behind cordial-chaos: a
// YAML scenario runner that generates workloads from weighted templates,
// drives them through the real daemons (cordial-serve, cordial-control,
// cordial-router) over the binary wire codec, injects failures on a
// timeline — SIGKILL, disk faults, clock skew, poisoned events, router
// partitions — and asserts SLOs scraped from the daemons' own /metrics
// and /statsz endpoints. One scenario run is one repeatable fleet-scale
// verdict over the whole serving stack.
//
// The repo carries no third-party dependencies, so the scenario loader
// includes a minimal YAML subset parser (this file): nested maps keyed by
// identifier-like scalars, block lists ("- item"), scalar leaves, and
// comments. That subset covers every scenario shape the harness defines;
// anchors, flow collections, multi-line strings and type tags are
// deliberately out of scope and rejected loudly.
package chaos

import (
	"fmt"
	"strings"
)

// yamlLine is one significant (non-blank, non-comment) line.
type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

// parseYAML parses the supported YAML subset into nested
// map[string]any / []any / string values. Scalars stay strings; typed
// conversion happens at decode time where the field is known.
func parseYAML(data []byte) (map[string]any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimLeft(line, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.ContainsRune(line, '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		lines = append(lines, yamlLine{
			indent: len(line) - len(trimmed),
			text:   strings.TrimSpace(trimmed),
			num:    i + 1,
		})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseValue(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("yaml: document root must be a mapping")
	}
	return m, nil
}

// stripComment removes a trailing "#..." that is not inside quotes.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseValue parses the block starting at the current line, which must be
// indented at least minIndent.
func (p *yamlParser) parseValue(minIndent int) (any, error) {
	ln := p.lines[p.pos]
	if ln.indent < minIndent {
		return nil, fmt.Errorf("yaml line %d: unexpected outdent", ln.num)
	}
	if isListItem(ln.text) {
		return p.parseList(ln.indent)
	}
	return p.parseMap(ln.indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseMap parses consecutive "key: value" / "key:" lines at exactly
// indent.
func (p *yamlParser) parseMap(indent int) (map[string]any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indent under a scalar value", ln.num)
		}
		if isListItem(ln.text) {
			break
		}
		key, rest, err := cutKey(ln.text, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = unquoteScalar(rest)
			continue
		}
		// Block value: anything more indented; a list may also sit at the
		// SAME indent as its key (common YAML style).
		if p.pos < len(p.lines) &&
			(p.lines[p.pos].indent > indent ||
				(p.lines[p.pos].indent == indent && isListItem(p.lines[p.pos].text))) {
			v, err := p.parseValue(indent)
			if err != nil {
				return nil, err
			}
			// An equally indented list was consumed as this key's value;
			// a deeper block likewise. But an equally indented MAP line
			// would have been a sibling key — parseValue only recursed for
			// deeper indents or list items, so this is safe.
			m[key] = v
			continue
		}
		m[key] = nil
	}
	return m, nil
}

// parseList parses consecutive "- ..." lines at exactly indent.
func (p *yamlParser) parseList(indent int) ([]any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !isListItem(ln.text) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseValue(indent + 1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, _, err := cutKey(rest, ln.num); err == nil && key != "" {
			// "- key: ..." starts a map item: rewrite the line as its first
			// key at the item's content indent and parse the map there.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: ln.num}
			m, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			continue
		}
		p.pos++
		out = append(out, unquoteScalar(rest))
	}
	return out, nil
}

// cutKey splits "key: value" or "key:"; keys are identifier-like
// (letters, digits, _, -). Anything else is not a mapping line.
func cutKey(text string, num int) (key, rest string, err error) {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", num, text)
	}
	key = text[:i]
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return "", "", fmt.Errorf("yaml line %d: invalid key %q", num, key)
		}
	}
	rest = strings.TrimSpace(text[i+1:])
	if rest != "" && !strings.HasPrefix(text[i+1:], " ") {
		return "", "", fmt.Errorf("yaml line %d: missing space after %q:", num, key)
	}
	return key, rest, nil
}

// unquoteScalar strips one level of matching quotes.
func unquoteScalar(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
