package lifecycle

import (
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/obs"
	"cordial/internal/registry"
	"cordial/internal/stream"
	"cordial/internal/trace"
	"cordial/internal/wal"
)

// seedPipeline fits the v1 model on an aggregation-heavy fleet; the drift
// tests then feed scattered-heavy traffic so the class-mix test fires.
var seedPipeline = sync.OnceValues(func() (*core.Pipeline, error) {
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 60
	spec.BenignBanks = 0
	spec.Seed = 21
	fleet, err := trace.Generate(spec)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(core.RandomForest)
	cfg.Params = core.ModelParams{Trees: 10, Depth: 6, LearningRate: 0.15}
	pipe, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := pipe.Fit(fleet.Faults); err != nil {
		return nil, err
	}
	return pipe, nil
})

// driftedFleet generates a scattered-heavy month: a mix far from the
// default weights the seed model trained under.
func driftedFleet(t *testing.T, seed uint64, uerBanks int) *trace.Fleet {
	t.Helper()
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = uerBanks
	spec.BenignBanks = 0
	spec.Seed = seed
	spec.Weights = faultsim.PatternWeights{
		faultsim.PatternSingleRow:    15,
		faultsim.PatternDoubleRow:    5,
		faultsim.PatternHalfTotalRow: 0,
		faultsim.PatternScattered:    70,
		faultsim.PatternWholeColumn:  10,
	}
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Log.Sort()
	return fleet
}

// harness builds the full loop: registry with the seed model active, a
// durable engine bound to it, and a manager with test-sized thresholds.
func harness(t *testing.T) (*stream.Engine, *registry.Registry, *Manager, *obs.Registry) {
	t.Helper()
	pipe, err := seedPipeline()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(registry.Options{Dir: t.TempDir(), Geometry: hbm.DefaultGeometry})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.Install(pipe, "seed")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(meta.Version); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	engine, err := stream.New(stream.Config{
		Models:     reg,
		Shards:     4,
		Metrics:    metrics,
		Durability: stream.DurabilityConfig{Dir: t.TempDir(), Sync: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	go func() {
		for range engine.Actions() {
		}
	}()

	trainCfg := core.DefaultConfig(core.RandomForest)
	trainCfg.Params = core.ModelParams{Trees: 10, Depth: 6, LearningRate: 0.15}
	mgr, err := New(Config{
		Engine:          engine,
		Registry:        reg,
		Geometry:        hbm.DefaultGeometry,
		Train:           trainCfg,
		Interval:        time.Minute, // ticks driven manually
		DriftPValue:     0.01,
		DriftSample:     30,
		MinBanks:        10,
		ShadowMinEvents: 50,
		ICRMargin:       1, // promotion gated on mechanics, not model luck
		Metrics:         metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine, reg, mgr, metrics
}

func ingest(t *testing.T, engine *stream.Engine, fleet *trace.Fleet) {
	t.Helper()
	for _, ev := range fleet.Log.Events() {
		if err := engine.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestDriftRetrainShadowPromote is the tentpole end-to-end: drifted
// traffic trips the chi-square check, the manager refits from the journal,
// shadow-scores the candidate on fresh traffic, and promotes it through
// the atomic swap — with zero dropped events and all pre-swap sessions
// still pinned to the seed version.
func TestDriftRetrainShadowPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipelines")
	}
	engine, reg, mgr, _ := harness(t)

	// Phase 1: drifted traffic. Classifications fill the ring; the journal
	// accumulates the self-labelling corpus.
	ingest(t, engine, driftedFleet(t, 31, 60))
	if n := engine.ClassificationsTotal(); n < 30 {
		t.Fatalf("only %d classifications after drifted ingest, need 30", n)
	}

	mgr.Tick()
	st := mgr.Status()
	if st.State != "shadowing" {
		t.Fatalf("after drift tick: state %q (lastErr %q), want shadowing", st.State, st.LastError)
	}
	if st.LastDriftP >= 0.01 {
		t.Fatalf("drift p-value %g did not cross the trigger", st.LastDriftP)
	}
	if st.CandidateVersion != 2 {
		t.Fatalf("candidate version %d, want 2", st.CandidateVersion)
	}
	if got := reg.Len(); got != 2 {
		t.Fatalf("registry holds %d versions, want 2", got)
	}

	// The swap has not happened: new sessions still bind v1.
	if v := engine.ActiveModelVersion(); v != 1 {
		t.Fatalf("active version %d during shadow, want 1", v)
	}

	// Phase 2: fresh traffic for fresh banks — these get shadow twins.
	ingest(t, engine, driftedFleet(t, 32, 40))
	ss := engine.ShadowStats()
	if ss.Events < 50 {
		t.Fatalf("shadow saw %d events, need 50", ss.Events)
	}
	if ss.Banks == 0 {
		t.Fatal("no banks acquired shadow twins")
	}

	// Phase 3: judgement tick promotes.
	mgr.Tick()
	st = mgr.Status()
	if st.State != "idle" || st.Promotions != 1 {
		t.Fatalf("after judge tick: state %q promotions %d (lastErr %q), want idle/1",
			st.State, st.Promotions, st.LastError)
	}
	if v := engine.ActiveModelVersion(); v != 2 {
		t.Fatalf("active version %d after promotion, want 2", v)
	}
	if v := reg.ActiveVersion(); v != 2 {
		t.Fatalf("registry active %d after promotion, want 2", v)
	}
	if engine.ShadowStats().Active {
		t.Fatal("shadow still active after promotion")
	}

	// Pre-swap sessions stay pinned to v1; post-swap banks bind v2.
	stats := engine.Stats()
	if stats.Dropped != 0 {
		t.Fatalf("%d events dropped", stats.Dropped)
	}
	if stats.Processed != stats.Ingested {
		t.Fatalf("processed %d != ingested %d", stats.Processed, stats.Ingested)
	}
	pinnedV1 := 0
	for _, s := range engine.Sessions() {
		if s.ModelVersion != 1 {
			t.Fatalf("pre-swap session %v pinned to %d, want 1", s.Bank, s.ModelVersion)
		}
		pinnedV1++
	}
	if pinnedV1 == 0 {
		t.Fatal("no sessions to check pinning on")
	}
	ingest(t, engine, driftedFleet(t, 33, 5))
	foundV2 := false
	for _, s := range engine.Sessions() {
		if s.ModelVersion == 2 {
			foundV2 = true
		}
	}
	if !foundV2 {
		t.Fatal("no post-swap session bound version 2")
	}

	// Manual rollback returns to v1 (sessions keep their pins).
	if err := mgr.Rollback(); err != nil {
		t.Fatal(err)
	}
	if v := engine.ActiveModelVersion(); v != 1 {
		t.Fatalf("active version %d after rollback, want 1", v)
	}
	if v := reg.ActiveVersion(); v != 1 {
		t.Fatalf("registry active %d after rollback, want 1", v)
	}
}

// TestShadowRollbackOnTimeout: a candidate that never sees enough traffic
// is rolled back, the incumbent stays active, and the artefact remains
// installed for manual promotion.
func TestShadowRollbackOnTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipelines")
	}
	engine, reg, mgr, _ := harness(t)
	ingest(t, engine, driftedFleet(t, 41, 40))

	if err := mgr.Retrain("test"); err != nil {
		t.Fatal(err)
	}
	if st := mgr.Status(); st.State != "shadowing" {
		t.Fatalf("state %q, want shadowing", st.State)
	}

	// No further traffic; simulate the timeout by aging the shadow start.
	mgr.mu.Lock()
	mgr.shadowFrom = mgr.shadowFrom.Add(-mgr.cfg.ShadowTimeout - time.Second)
	mgr.mu.Unlock()
	mgr.Tick()

	st := mgr.Status()
	if st.State != "idle" || st.Rollbacks != 1 {
		t.Fatalf("state %q rollbacks %d, want idle/1", st.State, st.Rollbacks)
	}
	if v := engine.ActiveModelVersion(); v != 1 {
		t.Fatalf("active version %d after rollback, want 1", v)
	}
	if got := reg.Len(); got != 2 {
		t.Fatalf("registry holds %d versions, want 2 (candidate kept)", got)
	}
	// The kept candidate can still be promoted manually.
	if err := mgr.Promote(2); err != nil {
		t.Fatal(err)
	}
	if v := engine.ActiveModelVersion(); v != 2 {
		t.Fatalf("active version %d after manual promotion, want 2", v)
	}
}

// TestDriftQuietWithoutShift: traffic matching the training mix must not
// trigger a retrain.
func TestDriftQuietWithoutShift(t *testing.T) {
	if testing.Short() {
		t.Skip("trains pipelines")
	}
	engine, _, mgr, _ := harness(t)
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 60
	spec.BenignBanks = 0
	spec.Seed = 51 // default weights: same regime the seed model saw
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Log.Sort()
	ingest(t, engine, fleet)

	mgr.Tick()
	st := mgr.Status()
	if st.State != "idle" || st.Retrains != 0 {
		t.Fatalf("state %q retrains %d after in-regime traffic, want idle/0 (p=%g)",
			st.State, st.Retrains, st.LastDriftP)
	}
}
