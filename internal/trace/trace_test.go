package trace

import (
	"math"
	"testing"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

// testSpec returns a small but statistically meaningful fleet spec.
func testSpec(seed uint64) Spec {
	s := DefaultSpec(hbm.DefaultGeometry)
	s.UERBanks = 120
	s.BenignBanks = 700
	s.Seed = seed
	return s
}

func generate(t *testing.T, seed uint64) *Fleet {
	t.Helper()
	f, err := Generate(testSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultSpecValid(t *testing.T) {
	if err := DefaultSpec(hbm.DefaultGeometry).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	s := DefaultSpec(hbm.DefaultGeometry)
	s.UERBanks = -1
	if err := s.Validate(); err == nil {
		t.Error("negative UERBanks accepted")
	}
	s = DefaultSpec(hbm.DefaultGeometry)
	s.UERBanks = s.Fault.Geometry.TotalBanks() + 1
	if err := s.Validate(); err == nil {
		t.Error("overfull fleet accepted")
	}
	s = DefaultSpec(hbm.DefaultGeometry)
	s.CompanionProbs[hbm.LevelSID] = 1.5
	if err := s.Validate(); err == nil {
		t.Error("companion probability >1 accepted")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	f := generate(t, 1)
	if len(f.Faults) != 120 {
		t.Fatalf("fault count = %d, want 120", len(f.Faults))
	}
	if !f.Log.IsSorted() {
		t.Fatal("fleet log not sorted")
	}
	if f.Log.Len() == 0 {
		t.Fatal("empty fleet log")
	}
	// Every event is valid under the geometry.
	geo := f.Spec.Fault.Geometry
	for _, e := range f.Log.Events() {
		if err := e.Validate(geo); err != nil {
			t.Fatal(err)
		}
	}
	// Benign banks (companions + independents) at least the independent
	// count.
	if len(f.BenignBankKeys) < 700 {
		t.Fatalf("benign banks = %d, want ≥700", len(f.BenignBankKeys))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, 42)
	b := generate(t, 42)
	if a.Log.Len() != b.Log.Len() {
		t.Fatalf("log lengths differ: %d vs %d", a.Log.Len(), b.Log.Len())
	}
	for i := 0; i < a.Log.Len(); i++ {
		if a.Log.At(i) != b.Log.At(i) {
			t.Fatalf("event %d differs across same-seed runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := generate(t, 1)
	b := generate(t, 2)
	if a.Log.Len() == b.Log.Len() {
		same := true
		for i := 0; i < a.Log.Len(); i++ {
			if a.Log.At(i) != b.Log.At(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical fleets")
		}
	}
}

func TestNoDuplicateFaultyBanks(t *testing.T) {
	f := generate(t, 3)
	seen := make(map[uint64]bool)
	for _, bf := range f.Faults {
		k := bf.Bank.Pack()
		if seen[k] {
			t.Fatalf("bank %v used twice", bf.Bank)
		}
		seen[k] = true
	}
	for _, k := range f.BenignBankKeys {
		if seen[k] {
			t.Fatalf("benign bank %v collides with a faulty bank", hbm.Unpack(k))
		}
	}
}

func TestBenignBanksLogNoUER(t *testing.T) {
	f := generate(t, 4)
	benign := make(map[uint64]bool)
	for _, k := range f.BenignBankKeys {
		benign[k] = true
	}
	for _, e := range f.Log.Events() {
		if e.Class == ecc.ClassUER && benign[e.Addr.BankKey()] {
			t.Fatalf("benign bank %v logged a UER", e.Addr)
		}
	}
}

func TestSuddenByLevelTableIShape(t *testing.T) {
	f := generate(t, 5)
	rows := SuddenByLevel(f.Log)
	if len(rows) != len(hbm.TableLevels) {
		t.Fatalf("SuddenByLevel returned %d rows", len(rows))
	}
	byLevel := make(map[hbm.Level]SuddenStats)
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	// Row level: predictable ratio ~4.4% (Table I: 4.39%).
	rowRatio := byLevel[hbm.LevelRow].PredictableRatio()
	if math.Abs(rowRatio-0.0439) > 0.025 {
		t.Errorf("row predictable ratio = %.4f, want ~0.044", rowRatio)
	}
	// Bank level: ~29% (Table I: 29.23%); generous tolerance — it is an
	// emergent quantity.
	bankRatio := byLevel[hbm.LevelBank].PredictableRatio()
	if bankRatio < 0.18 || bankRatio > 0.42 {
		t.Errorf("bank predictable ratio = %.4f, want ~0.29", bankRatio)
	}
	// Monotone non-decreasing from Row to NPU (coarser entities see more
	// precursors). Allow small statistical slack.
	order := []hbm.Level{
		hbm.LevelRow, hbm.LevelBank, hbm.LevelBankGroup,
		hbm.LevelPseudoChannel, hbm.LevelSID, hbm.LevelHBM, hbm.LevelNPU,
	}
	for i := 1; i < len(order); i++ {
		prev, cur := byLevel[order[i-1]].PredictableRatio(), byLevel[order[i]].PredictableRatio()
		if cur < prev-0.03 {
			t.Errorf("predictable ratio at %v (%.3f) dips below %v (%.3f)",
				order[i], cur, order[i-1], prev)
		}
	}
	// Sudden UERs dominate at the row level, as the paper stresses
	// (95.61%).
	if s := byLevel[hbm.LevelRow]; s.Sudden <= s.NonSudden*10 {
		t.Errorf("row-level sudden/non-sudden = %d/%d, sudden should dominate", s.Sudden, s.NonSudden)
	}
}

func TestSummaryByLevelTableIIShape(t *testing.T) {
	f := generate(t, 6)
	rows := SummaryByLevel(f.Log)
	if len(rows) != len(hbm.TableLevels) {
		t.Fatalf("SummaryByLevel returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.WithCE < r.WithUEO && r.Level != hbm.LevelRow {
			t.Errorf("%v: CE entities (%d) fewer than UEO entities (%d)", r.Level, r.WithCE, r.WithUEO)
		}
		if r.Total < r.WithCE || r.Total < r.WithUER {
			t.Errorf("%v: total %d below class counts", r.Level, r.Total)
		}
		if r.WithCE <= r.WithUER {
			t.Errorf("%v: CE entities (%d) should exceed UER entities (%d)", r.Level, r.WithCE, r.WithUER)
		}
	}
	// Finer levels have at least as many affected entities as coarser ones.
	for i := 1; i < len(rows); i++ {
		if rows[i].Total < rows[i-1].Total {
			t.Errorf("total entities decreased from %v (%d) to %v (%d)",
				rows[i-1].Level, rows[i-1].Total, rows[i].Level, rows[i].Total)
		}
	}
	// Bank level: the UER bank count matches the ground truth.
	for _, r := range rows {
		if r.Level == hbm.LevelBank && r.WithUER != len(f.Faults) {
			t.Errorf("banks with UER = %d, want %d", r.WithUER, len(f.Faults))
		}
	}
}

func TestPatternDistributionMatchesWeights(t *testing.T) {
	s := testSpec(7)
	s.UERBanks = 600
	s.BenignBanks = 0
	f, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	dist := PatternDistribution(f.Faults)
	want := map[faultsim.Pattern]float64{
		faultsim.PatternSingleRow:    0.682,
		faultsim.PatternDoubleRow:    0.099,
		faultsim.PatternHalfTotalRow: 0.073,
		faultsim.PatternScattered:    0.125,
		faultsim.PatternWholeColumn:  0.021,
	}
	totalShare := 0.0
	for _, p := range dist {
		totalShare += p.Share
		if math.Abs(p.Share-want[p.Pattern]) > 0.06 {
			t.Errorf("%v share = %.3f, want ~%.3f", p.Pattern, p.Share, want[p.Pattern])
		}
	}
	if math.Abs(totalShare-1) > 1e-9 {
		t.Errorf("shares sum to %g", totalShare)
	}
}

func TestPatternDistributionEmpty(t *testing.T) {
	dist := PatternDistribution(nil)
	for _, p := range dist {
		if p.Count != 0 || p.Share != 0 {
			t.Fatalf("empty distribution has non-zero entry %+v", p)
		}
	}
}

func TestLocalityChiSquarePeaksAt128(t *testing.T) {
	f := generate(t, 8)
	points, err := LocalityChiSquare(f.Log, f.Spec.Fault.Geometry.RowsPerBank, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("got %d points, want 10", len(points))
	}
	peak := PeakThreshold(points)
	// The paper's Figure 4 peak: 128 rows. Allow one neighbouring power of
	// two of statistical slack.
	if peak != 128 && peak != 64 && peak != 256 {
		t.Fatalf("locality peak at %d rows, want 128 (±1 octave)", peak)
	}
	// Observed fraction is monotone in the threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Observed < points[i-1].Observed {
			t.Fatalf("observed fraction not monotone at threshold %d", points[i].Threshold)
		}
	}
	// The statistic is meaningfully positive at the peak.
	for _, p := range points {
		if p.Threshold == peak && p.ChiSquare < 100 {
			t.Fatalf("peak chi-square %.1f too small", p.ChiSquare)
		}
	}
}

func TestLocalityChiSquarePeakIsExactly128MultiSeed(t *testing.T) {
	// Across several seeds the modal peak must be 128, matching Figure 4.
	hits := 0
	const seeds = 5
	for seed := uint64(20); seed < 20+seeds; seed++ {
		f := generate(t, seed)
		points, err := LocalityChiSquare(f.Log, f.Spec.Fault.Geometry.RowsPerBank, DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		if PeakThreshold(points) == 128 {
			hits++
		}
	}
	if hits < seeds-1 {
		t.Fatalf("peak at 128 in only %d/%d seeds", hits, seeds)
	}
}

func TestLocalityChiSquareErrors(t *testing.T) {
	f := generate(t, 9)
	if _, err := LocalityChiSquare(f.Log, 1, DefaultThresholds()); err == nil {
		t.Error("rowsPerBank=1 accepted")
	}
	if _, err := LocalityChiSquare(f.Log, 32768, nil); err == nil {
		t.Error("empty thresholds accepted")
	}
	if _, err := LocalityChiSquare(f.Log, 32768, []int{0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := LocalityChiSquare(mcelog.NewLog(0), 32768, DefaultThresholds()); err == nil {
		t.Error("empty log accepted")
	}
}

func TestDefaultThresholds(t *testing.T) {
	ths := DefaultThresholds()
	want := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	if len(ths) != len(want) {
		t.Fatalf("thresholds = %v", ths)
	}
	for i := range want {
		if ths[i] != want[i] {
			t.Fatalf("thresholds = %v, want %v", ths, want)
		}
	}
}

func TestSuddenStatsPredictableRatio(t *testing.T) {
	s := SuddenStats{Sudden: 760, NonSudden: 314}
	if r := s.PredictableRatio(); math.Abs(r-0.2923) > 0.001 {
		t.Fatalf("PredictableRatio = %.4f, want 0.2923", r)
	}
	var zero SuddenStats
	if zero.PredictableRatio() != 0 {
		t.Fatal("zero stats ratio not 0")
	}
}

func BenchmarkGenerateFleet(b *testing.B) {
	s := testSpec(1)
	s.UERBanks = 50
	s.BenignBanks = 200
	for i := 0; i < b.N; i++ {
		if _, err := Generate(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuddenByLevel(b *testing.B) {
	f, err := Generate(testSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SuddenByLevel(f.Log)
	}
}
