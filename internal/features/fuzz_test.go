package features

import (
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

// FuzzIncrementalFeatureEquivalence decodes arbitrary bytes into a
// nondecreasing-timestamp event stream and asserts that the incremental
// BankState is bit-identical to the batch reference at every prefix, for
// both the pattern vector and every block vector. This is the correctness
// pin for the O(1)-per-event refactor: any divergence between the two
// paths, however obscure the triggering sequence, is a crash here.
func FuzzIncrementalFeatureEquivalence(f *testing.F) {
	// Seeds cover the known-tricky shapes: timestamp ties at the first
	// UER, cutoff extensions revealing pending events, repeat UER rows,
	// and post-budget traffic.
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x02, 0x10, 0x00, 0x02, 0x14, 0x03, 0x00, 0x10, 0x05})
	f.Add([]byte{0x21, 0x02, 0x20, 0x04, 0x02, 0x20, 0x00, 0x00, 0x21, 0x07, 0x02, 0x20, 0x00})
	f.Add([]byte{0x02, 0x02, 0x08, 0x11, 0x02, 0x08, 0x00, 0x02, 0x08, 0x09, 0x01, 0x30, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte picks the budget (1..4) and the block geometry.
		cfg := PatternConfig{UERBudget: 1 + int(data[0]&0x03)}
		spec := BlockSpec{WindowRadius: 8, BlockSize: 4}
		if data[0]&0x04 != 0 {
			spec = BlockSpec{WindowRadius: 16, BlockSize: 8}
		}
		data = data[1:]

		// Each subsequent byte is one event:
		//   bits 0-1  class (3 maps to CE, keeping all classes reachable)
		//   bits 2-4  row delta from a small palette, so rows cluster,
		//             repeat, and occasionally jump out of the window
		//   bits 5-7  time advance in 13-minute steps (0 = duplicate
		//             timestamp, the tie cases the cutoff logic must get
		//             exactly right)
		const maxEvents = 120
		if len(data) > maxEvents {
			data = data[:maxEvents]
		}
		events := make([]mcelog.Event, 0, len(data))
		now := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
		row := 100
		deltas := [8]int{0, 1, -1, 3, -3, 20, -20, 7}
		classes := [4]ecc.Class{ecc.ClassCE, ecc.ClassCE, ecc.ClassUEO, ecc.ClassUER}
		for _, b := range data {
			class := classes[b&0x03]
			row += deltas[(b>>2)&0x07]
			if row < 0 {
				row = 0
			}
			now = now.Add(time.Duration(b>>5) * 13 * time.Minute)
			events = append(events, mcelog.Event{Time: now, Addr: hbmAddr(row), Class: class})
		}
		assertPrefixEquivalence(t, events, cfg, spec)
	})
}
