package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot file layout:
//
//	magic "CSNP" | uint16 version | uint16 reserved
//	uint64 sequence | uint64 payload length
//	payload
//	uint32 CRC-32C over everything above
//
// Snapshots are written to a temp file, synced, then renamed into place,
// so a crash mid-write leaves either the old set of snapshots or the old
// set plus one complete new file — never a half-written one under the
// final name. Loading walks snapshots newest-first and falls back past
// any that fail validation, so one corrupted snapshot costs a longer WAL
// replay, not the recovery.
const (
	snapMagic   = "CSNP"
	snapVersion = 1
	snapHdrSize = 24
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
	snapNameFmt = snapPrefix + "%016x" + snapSuffix
)

// MaxSnapshotBytes caps a snapshot payload; decoded lengths beyond it are
// treated as corruption.
const MaxSnapshotBytes = 1 << 30

// ErrNoSnapshot is returned by LoadLatestSnapshot when no valid snapshot
// exists (recovery then replays the journal from its start).
var ErrNoSnapshot = errors.New("wal: no valid snapshot")

// SnapshotInfo identifies one snapshot file.
type SnapshotInfo struct {
	// Seq is the snapshot's sequence number (monotonically increasing).
	Seq uint64
	// Path is the file's full path.
	Path string
}

func snapName(seq uint64) string { return fmt.Sprintf(snapNameFmt, seq) }

// ListSnapshots returns the directory's snapshot files, newest (highest
// sequence) first. Files that merely look like snapshots are listed; the
// validity check happens on read.
func ListSnapshots(fs FS, dir string) ([]SnapshotInfo, error) {
	if fs == nil {
		fs = OSFS
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing snapshots: %w", err)
	}
	var out []SnapshotInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		var seq uint64
		hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		if len(hex) != 16 {
			continue
		}
		if _, err := fmt.Sscanf(hex, "%016x", &seq); err != nil {
			continue
		}
		out = append(out, SnapshotInfo{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out, nil
}

// WriteSnapshot atomically writes a snapshot with the given sequence
// number: temp file, fsync, rename. On any error the temp file is removed
// and the previous snapshots remain untouched.
func WriteSnapshot(fs FS, dir string, seq uint64, payload []byte) (path string, err error) {
	if fs == nil {
		fs = OSFS
	}
	if len(payload) > MaxSnapshotBytes {
		return "", fmt.Errorf("wal: snapshot of %d bytes exceeds max %d", len(payload), MaxSnapshotBytes)
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("wal: creating snapshot dir: %w", err)
	}
	final := filepath.Join(dir, snapName(seq))
	tmp := final + tmpSuffix
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	defer func() {
		if err != nil {
			_ = fs.Remove(tmp)
		}
	}()
	hdr := make([]byte, snapHdrSize)
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	sum := crc32.Update(0, crcTable, hdr)
	sum = crc32.Update(sum, crcTable, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	for _, chunk := range [][]byte{hdr, payload, tail[:]} {
		if _, werr := f.Write(chunk); werr != nil {
			f.Close()
			return "", fmt.Errorf("wal: writing snapshot: %w", werr)
		}
	}
	if serr := f.Sync(); serr != nil {
		f.Close()
		return "", fmt.Errorf("wal: syncing snapshot: %w", serr)
	}
	if cerr := f.Close(); cerr != nil {
		return "", fmt.Errorf("wal: closing snapshot: %w", cerr)
	}
	if rerr := fs.Rename(tmp, final); rerr != nil {
		return "", fmt.Errorf("wal: publishing snapshot: %w", rerr)
	}
	syncDir(fs, final)
	return final, nil
}

// ReadSnapshot reads and validates one snapshot file, returning its
// sequence number and payload. Any framing or checksum violation is an
// error — the caller falls back to an older snapshot.
func ReadSnapshot(fs FS, path string) (seq uint64, payload []byte, err error) {
	if fs == nil {
		fs = OSFS
	}
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: opening snapshot: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, MaxSnapshotBytes+snapHdrSize+8))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// DecodeSnapshot validates a snapshot image held in memory. Exposed
// separately so the decoder can be fuzzed without a filesystem.
func DecodeSnapshot(data []byte) (seq uint64, payload []byte, err error) {
	if len(data) < snapHdrSize+4 {
		return 0, nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:4]) != snapMagic {
		return 0, nil, fmt.Errorf("wal: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != snapVersion {
		return 0, nil, fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint64(data[16:24])
	if n > MaxSnapshotBytes || int64(n) != int64(len(data)-snapHdrSize-4) {
		return 0, nil, fmt.Errorf("wal: snapshot length %d inconsistent with file size %d", n, len(data))
	}
	body := data[:snapHdrSize+int(n)]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return 0, nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	return seq, data[snapHdrSize : snapHdrSize+int(n)], nil
}

// LoadLatestSnapshot returns the newest snapshot that validates, skipping
// corrupt ones. ErrNoSnapshot means none validated (or none exist).
func LoadLatestSnapshot(fs FS, dir string) (seq uint64, payload []byte, err error) {
	snaps, err := ListSnapshots(fs, dir)
	if err != nil {
		return 0, nil, err
	}
	for _, s := range snaps {
		if seq, payload, err = ReadSnapshot(fs, s.Path); err == nil {
			return seq, payload, nil
		}
	}
	return 0, nil, ErrNoSnapshot
}

// PruneSnapshots removes all but the newest keep snapshots. At least one
// is always kept; errors removing individual files are returned but the
// sweep continues.
func PruneSnapshots(fs FS, dir string, keep int) error {
	if fs == nil {
		fs = OSFS
	}
	if keep < 1 {
		keep = 1
	}
	snaps, err := ListSnapshots(fs, dir)
	if err != nil {
		return err
	}
	var firstErr error
	for i := keep; i < len(snaps); i++ {
		if rerr := fs.Remove(snaps[i].Path); rerr != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: pruning snapshot: %w", rerr)
		}
	}
	return firstErr
}
