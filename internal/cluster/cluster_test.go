package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/stream"
	"cordial/internal/wal"
)

// testStrategy is a minimal durable strategy: it tracks distinct UER rows
// per bank and isolates each row once a budget is reached. Deterministic
// EncodeState makes handoff bit-identity assertions possible.
type testStrategy struct{ budget int }

func (*testStrategy) Name() string { return "cluster-test" }

func (s *testStrategy) NewSession(bank hbm.BankAddress) core.Session {
	return &testSession{strategy: s, rows: make(map[int]bool)}
}

func (s *testStrategy) RestoreSession(bank hbm.BankAddress, data []byte) (core.Session, error) {
	var img struct {
		Rows       []int
		Classified bool
	}
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, err
	}
	sess := &testSession{strategy: s, rows: make(map[int]bool), classified: img.Classified}
	for _, r := range img.Rows {
		sess.rows[r] = true
	}
	return sess, nil
}

type testSession struct {
	strategy   *testStrategy
	rows       map[int]bool
	classified bool
}

func (s *testSession) OnEvent(e mcelog.Event) core.Decision {
	if e.Class != ecc.ClassUER {
		return core.Decision{}
	}
	s.rows[e.Addr.Row] = true
	if len(s.rows) >= s.strategy.budget {
		s.classified = true
		return core.Decision{IsolateRows: []int{e.Addr.Row}}
	}
	return core.Decision{}
}

func (s *testSession) EncodeState() ([]byte, error) {
	rows := make([]int, 0, len(s.rows))
	for r := range s.rows {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return json.Marshal(struct {
		Rows       []int
		Classified bool
	}{rows, s.classified})
}

var quiet = slog.New(slog.NewTextHandler(io.Discard, nil))

// testNode is one in-process serve node: engine + HTTP API + agent,
// wired exactly like cmd/cordial-serve in cluster mode.
type testNode struct {
	id     string
	dir    string
	engine *stream.Engine
	api    *stream.Server
	agent  *Agent
	http   *httptest.Server
	stop   context.CancelFunc
}

func startNode(t *testing.T, cpURL, id string) *testNode {
	t.Helper()
	dir := t.TempDir()
	engine, err := stream.New(stream.Config{
		Strategy:   &testStrategy{budget: 3},
		Shards:     2,
		Durability: stream.DurabilityConfig{Dir: dir, Sync: wal.SyncNever},
		Logger:     quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := stream.NewServer(engine, stream.ServerConfig{})
	mux := http.NewServeMux()
	hs := httptest.NewServer(mux)
	agent := NewAgent(AgentConfig{
		ControlPlane: cpURL,
		Self:         Member{ID: id, Addr: hs.Listener.Addr().String(), WALDir: dir},
		Heartbeat:    50 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
		Logger:       quiet,
	}, engine, api)
	mux.Handle("/cluster/", agent.Handler())
	mux.Handle("/", api)
	ctx, cancel := context.WithCancel(context.Background())
	go agent.Run(ctx)
	n := &testNode{id: id, dir: dir, engine: engine, api: api, agent: agent, http: hs, stop: cancel}
	t.Cleanup(func() { cancel(); hs.Close(); engine.Close() })
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func clusterBank(i int) hbm.BankAddress {
	return hbm.BankAddress{Node: i % 8, NPU: (i / 8) % 8, BankGroup: (i / 64) % 4, Bank: i % 4}
}

func clusterUER(bank hbm.BankAddress, row, sec int) mcelog.Event {
	return mcelog.Event{
		Time:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second),
		Addr:  hbm.CellInBank(bank, row, 0),
		Class: ecc.ClassUER,
	}
}

// postEvents posts a JSONL batch and returns status + decoded result.
func postEvents(t *testing.T, baseURL string, events []mcelog.Event) (int, ingestResult) {
	t.Helper()
	var buf bytes.Buffer
	if err := mcelog.FromEvents(events).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/events", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, res
}

// startCP serves a control plane without its background sweeper (tests
// drive Sweep explicitly where needed).
func startCP(t *testing.T, cfg CPConfig) (*ControlPlane, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	cp := NewControlPlane(cfg)
	hs := httptest.NewServer(cp.Handler())
	t.Cleanup(hs.Close)
	return cp, hs
}

// TestClusterJoinHandoffLeave walks the live-rebalance protocol: a
// second node joins a loaded single-node cluster and receives exactly
// the banks the ring moves (the source drops them); ingest is fenced by
// ownership on both sides; a graceful leave returns everything.
func TestClusterJoinHandoffLeave(t *testing.T) {
	cp, cpSrv := startCP(t, CPConfig{})
	n1 := startNode(t, cpSrv.URL, "n1")
	waitFor(t, "n1 registration", func() bool { return n1.agent.Epoch() == 1 })

	// Load 8 banks, 4 UER rows each, through the single node.
	const banks, rowsPer = 8, 4
	var events []mcelog.Event
	for b := 0; b < banks; b++ {
		for r := 1; r <= rowsPer; r++ {
			events = append(events, clusterUER(clusterBank(b), r, b*100+r))
		}
	}
	status, res := postEvents(t, n1.http.URL, events)
	if status != http.StatusOK || res.Accepted != len(events) {
		t.Fatalf("seed ingest: status %d result %+v", status, res)
	}
	if err := n1.engine.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	n2 := startNode(t, cpSrv.URL, "n2")
	waitFor(t, "join rebalance", func() bool {
		return n2.agent.Epoch() == 2 && n1.agent.Epoch() == 2
	})

	// Placement: every bank's session lives exactly on its ring owner,
	// with its full pre-join history (stats moved with the state).
	ring, err := BuildRing(cp.Descriptor())
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		owner := ring.OwnerID(bank.BankKey())
		var ownerNode, otherNode *testNode = n1, n2
		if owner == "n2" {
			ownerNode, otherNode = n2, n1
			moved++
		}
		st, ok := ownerNode.engine.Session(bank)
		if !ok || st.Events != rowsPer {
			t.Fatalf("bank %v: owner %s session ok=%v stats=%+v, want %d events", bank, owner, ok, st, rowsPer)
		}
		if _, ok := otherNode.engine.Session(bank); ok {
			t.Errorf("bank %v: non-owner still holds a session after drop", bank)
		}
	}
	if moved == 0 {
		t.Fatal("ring moved no test banks to the joiner; widen the bank set")
	}

	// Ownership fences ingest: a bank owned by n2 is refused by n1 with
	// the not-owned marker and the current epoch.
	var n2Bank hbm.BankAddress
	for b := 0; b < banks; b++ {
		if ring.OwnerID(clusterBank(b).BankKey()) == "n2" {
			n2Bank = clusterBank(b)
			break
		}
	}
	status, res = postEvents(t, n1.http.URL, []mcelog.Event{clusterUER(n2Bank, 9, 999)})
	if status != http.StatusServiceUnavailable || res.NotOwned != 1 || res.Epoch != 2 {
		t.Fatalf("fenced ingest: status %d result %+v, want 503 notOwned=1 epoch=2", status, res)
	}

	// Graceful leave: n1 gets everything back, history intact.
	if err := n2.agent.Leave(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leave rebalance", func() bool { return n1.agent.Epoch() == 3 })
	for b := 0; b < banks; b++ {
		st, ok := n1.engine.Session(clusterBank(b))
		if !ok || st.Events != rowsPer {
			t.Fatalf("bank %v after leave: ok=%v stats=%+v, want %d events", clusterBank(b), ok, st, rowsPer)
		}
	}
	if got := cp.Descriptor(); len(got.Members) != 1 || got.Epoch != 3 {
		t.Fatalf("descriptor after leave: %+v", got)
	}
}

// TestRouterRoutesAndRetriesStaleRing: the router splits batches by
// owner; when its ring goes stale (a node joined and banks moved), the
// fenced nodes' 503s drive a refresh-and-resend of exactly the
// unconsumed suffix, and no line is lost or double-applied.
func TestRouterRoutesAndRetriesStaleRing(t *testing.T) {
	cp, cpSrv := startCP(t, CPConfig{})
	n1 := startNode(t, cpSrv.URL, "n1")
	n2 := startNode(t, cpSrv.URL, "n2")
	waitFor(t, "two nodes", func() bool {
		return n1.agent.Epoch() >= 2 && n2.agent.Epoch() >= 2
	})

	rt := NewRouter(RouterConfig{
		ControlPlane: cpSrv.URL,
		Backoff:      10 * time.Millisecond,
		Logger:       quiet,
	})
	if err := rt.refreshRing(); err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	const banks, rowsPer = 8, 2
	var batch []mcelog.Event
	for b := 0; b < banks; b++ {
		for r := 1; r <= rowsPer; r++ {
			batch = append(batch, clusterUER(clusterBank(b), r, b*100+r))
		}
	}
	status, res := postEvents(t, rtSrv.URL, batch)
	if status != http.StatusOK || res.Accepted != len(batch) {
		t.Fatalf("routed ingest: status %d result %+v", status, res)
	}

	// Make the router's ring stale: a third node joins and takes banks.
	n3 := startNode(t, cpSrv.URL, "n3")
	waitFor(t, "third node", func() bool { return n3.agent.Epoch() == 3 })

	var second []mcelog.Event
	for b := 0; b < banks; b++ {
		for r := rowsPer + 1; r <= 2*rowsPer; r++ {
			second = append(second, clusterUER(clusterBank(b), r, b*100+r))
		}
	}
	status, res = postEvents(t, rtSrv.URL, second)
	if status != http.StatusOK || res.Accepted != len(second) {
		t.Fatalf("stale-ring ingest: status %d result %+v", status, res)
	}
	if rt.failures.Value() != 0 {
		t.Fatalf("router abandoned %d batches", rt.failures.Value())
	}

	// Every bank's full history sits exactly on its current owner.
	ring, err := BuildRing(cp.Descriptor())
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*testNode{"n1": n1, "n2": n2, "n3": n3}
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		waitFor(t, fmt.Sprintf("bank %v drained on its owner", bank), func() bool {
			st, ok := nodes[ring.OwnerID(bank.BankKey())].engine.Session(bank)
			return ok && st.Events == 2*rowsPer
		})
		for id, n := range nodes {
			if id == ring.OwnerID(bank.BankKey()) {
				continue
			}
			if _, ok := n.engine.Session(bank); ok {
				t.Errorf("bank %v: stale session on non-owner %s", bank, id)
			}
		}
	}
}

// TestTakeoverDeadNode: a node that stops heartbeating is declared dead;
// the control plane rebuilds its sessions from its journal (no snapshot
// ever written) and the survivor adopts them with full history.
func TestTakeoverDeadNode(t *testing.T) {
	clock := &fakeClock{t: time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)}
	cp, cpSrv := startCP(t, CPConfig{HeartbeatTTL: time.Hour, Clock: clock.Now})
	n1 := startNode(t, cpSrv.URL, "n1")
	n2 := startNode(t, cpSrv.URL, "n2")
	waitFor(t, "two nodes", func() bool {
		return n1.agent.Epoch() >= 2 && n2.agent.Epoch() >= 2
	})

	// Ingest each bank directly at its owner.
	ring, err := BuildRing(cp.Descriptor())
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*testNode{"n1": n1, "n2": n2}
	const banks, rowsPer = 8, 4
	deadBanks := 0
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		owner := ring.OwnerID(bank.BankKey())
		if owner == "n2" {
			deadBanks++
		}
		var evs []mcelog.Event
		for r := 1; r <= rowsPer; r++ {
			evs = append(evs, clusterUER(bank, r, b*100+r))
		}
		status, res := postEvents(t, nodes[owner].http.URL, evs)
		if status != http.StatusOK || res.Accepted != rowsPer {
			t.Fatalf("ingest at %s: status %d result %+v", owner, status, res)
		}
	}
	if deadBanks == 0 {
		t.Fatal("no banks on the node being killed; widen the bank set")
	}
	if err := n2.engine.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill n2: no more heartbeats, no listener. Its journal stays on disk.
	n2.stop()
	n2.http.Close()

	// Expire n2's lease but keep n1's fresh: advance the clock, then wait
	// for one n1 heartbeat stamped with the advanced time.
	expired := clock.Advance(2 * time.Hour)
	waitFor(t, "n1 heartbeat after clock jump", func() bool {
		cp.mu.Lock()
		defer cp.mu.Unlock()
		m := cp.members["n1"]
		return m != nil && !m.lastSeen.Before(expired)
	})
	cp.Sweep()

	if got := cp.Descriptor(); len(got.Members) != 1 || got.Members[0].ID != "n1" {
		t.Fatalf("descriptor after takeover: %+v", got)
	}
	// The survivor holds every bank with full history, rebuilt for the
	// dead node's banks from its journal alone.
	for b := 0; b < banks; b++ {
		bank := clusterBank(b)
		waitFor(t, fmt.Sprintf("bank %v adopted", bank), func() bool {
			st, ok := n1.engine.Session(bank)
			return ok && st.Events == rowsPer
		})
	}
	waitFor(t, "n1 adopts the post-takeover ring", func() bool { return n1.agent.Epoch() == 3 })

	// The adopted state was snapshotted before the takeover completed:
	// a restart of the survivor over its directory keeps every session.
	if takeovers := cp.takeovers.Value(); takeovers != 1 {
		t.Fatalf("takeovers counter = %d, want 1", takeovers)
	}
}

// fakeClock is an injectable time source for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// postEventsBin posts a binary-framed batch and returns status + result.
func postEventsBin(t *testing.T, baseURL string, events []mcelog.Event) (int, ingestResult) {
	t.Helper()
	var buf bytes.Buffer
	enc := mcelog.NewFrameEncoder(&buf, 0)
	for _, ev := range events {
		if err := enc.Add(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/events.bin", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, res
}

// TestRouterCodecMatrix: every client-codec × upstream-codec combination
// delivers the same batch — binary framing is the default upstream, JSONL
// stays as a compatibility codec, and either may arrive from clients.
func TestRouterCodecMatrix(t *testing.T) {
	_, cpSrv := startCP(t, CPConfig{})
	n1 := startNode(t, cpSrv.URL, "n1")
	n2 := startNode(t, cpSrv.URL, "n2")
	waitFor(t, "two nodes", func() bool {
		return n1.agent.Epoch() >= 2 && n2.agent.Epoch() >= 2
	})

	for _, tc := range []struct {
		name     string
		upstream string
		binaryIn bool
	}{
		{"jsonl-in binary-up", CodecBinary, false},
		{"binary-in binary-up", CodecBinary, true},
		{"jsonl-in jsonl-up", CodecJSONL, false},
		{"binary-in jsonl-up", CodecJSONL, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRouter(RouterConfig{
				ControlPlane:  cpSrv.URL,
				UpstreamCodec: tc.upstream,
				Backoff:       10 * time.Millisecond,
				Logger:        quiet,
			})
			if err := rt.refreshRing(); err != nil {
				t.Fatal(err)
			}
			rtSrv := httptest.NewServer(rt)
			defer rtSrv.Close()

			var batch []mcelog.Event
			row := 1
			for b := 0; b < 8; b++ {
				batch = append(batch, clusterUER(clusterBank(b), row, b))
			}
			post := postEvents
			if tc.binaryIn {
				post = postEventsBin
			}
			status, res := post(t, rtSrv.URL, batch)
			if status != http.StatusOK || res.Accepted != len(batch) {
				t.Fatalf("%s: status %d result %+v", tc.name, status, res)
			}
		})
	}
}
