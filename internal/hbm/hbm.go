// Package hbm models the physical organisation of High Bandwidth Memory as
// described in §II-A of the Cordial paper: a fleet of compute nodes, each
// with 8 NPUs, each NPU with two HBM sockets; every HBM is an 8Hi stack
// exposing 2 stack IDs (SIDs), 8 channels, 2 pseudo-channels per channel,
// 4 bank groups per pseudo-channel and 4 banks per group. A bank is a
// two-dimensional array of cells indexed by row and column.
//
// The package provides a compact address representation, the micro-level
// hierarchy used throughout the paper (NPU → HBM → SID → PS-CH → BG → Bank →
// Row), and geometry helpers the simulators and predictors share.
package hbm

import (
	"fmt"
	"strconv"
	"strings"
)

// Geometry describes the dimensions of the modelled HBM fleet. The zero
// value is not useful; start from DefaultGeometry and adjust.
type Geometry struct {
	Nodes          int // compute nodes in the fleet
	NPUsPerNode    int // NPUs per compute node
	HBMsPerNPU     int // HBM sockets per NPU
	SIDsPerHBM     int // stack IDs per HBM (8Hi stack → 2 SIDs)
	ChannelsPerSID int // channels per stack ID
	PseudoChPerCh  int // pseudo-channels per channel
	BankGroups     int // bank groups per pseudo-channel
	BanksPerGroup  int // banks per bank group
	RowsPerBank    int // rows per bank
	ColsPerBank    int // columns per bank
}

// DefaultGeometry matches the HBM2E organisation in the paper (Figure 1)
// with a fleet large enough (1024 NPUs) that error banks stay sparse per
// NPU — the sparsity the hierarchical sudden-ratio structure of Table I
// depends on — while tests and examples still run quickly. Production-like
// studies scale Nodes up further; nothing else changes.
var DefaultGeometry = Geometry{
	Nodes:          128,
	NPUsPerNode:    8,
	HBMsPerNPU:     2,
	SIDsPerHBM:     2,
	ChannelsPerSID: 8,
	PseudoChPerCh:  2,
	BankGroups:     4,
	BanksPerGroup:  4,
	RowsPerBank:    32768,
	ColsPerBank:    128,
}

// Validate reports whether every dimension is positive and within the bit
// budget of the packed address encoding.
func (g Geometry) Validate() error {
	check := func(name string, v, max int) error {
		if v <= 0 {
			return fmt.Errorf("hbm: geometry %s must be positive, got %d", name, v)
		}
		if v > max {
			return fmt.Errorf("hbm: geometry %s = %d exceeds encoding limit %d", name, v, max)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    int
		max  int
	}{
		{"Nodes", g.Nodes, 1 << nodeBits},
		{"NPUsPerNode", g.NPUsPerNode, 1 << npuBits},
		{"HBMsPerNPU", g.HBMsPerNPU, 1 << hbmBits},
		{"SIDsPerHBM", g.SIDsPerHBM, 1 << sidBits},
		{"ChannelsPerSID", g.ChannelsPerSID, 1 << chBits},
		{"PseudoChPerCh", g.PseudoChPerCh, 1 << pschBits},
		{"BankGroups", g.BankGroups, 1 << bgBits},
		{"BanksPerGroup", g.BanksPerGroup, 1 << bankBits},
		{"RowsPerBank", g.RowsPerBank, 1 << rowBits},
		{"ColsPerBank", g.ColsPerBank, 1 << colBits},
	} {
		if err := check(c.name, c.v, c.max); err != nil {
			return err
		}
	}
	return nil
}

// TotalNPUs returns the number of NPUs in the fleet.
func (g Geometry) TotalNPUs() int { return g.Nodes * g.NPUsPerNode }

// TotalHBMs returns the number of HBM stacks in the fleet.
func (g Geometry) TotalHBMs() int { return g.TotalNPUs() * g.HBMsPerNPU }

// BanksPerHBM returns the number of banks in one HBM stack.
func (g Geometry) BanksPerHBM() int {
	return g.SIDsPerHBM * g.ChannelsPerSID * g.PseudoChPerCh * g.BankGroups * g.BanksPerGroup
}

// TotalBanks returns the number of banks in the fleet.
func (g Geometry) TotalBanks() int { return g.TotalHBMs() * g.BanksPerHBM() }

// Level identifies a micro-level of the HBM hierarchy. The ordering matches
// the paper's Tables I and II, from coarsest (NPU) to finest (Row).
type Level int

// Hierarchy levels, coarsest first. LevelChannel sits between SID and
// pseudo-channel physically but is omitted from the paper's per-level tables;
// TableLevels lists the seven levels the paper reports.
const (
	LevelNPU Level = iota + 1
	LevelHBM
	LevelSID
	LevelChannel
	LevelPseudoChannel
	LevelBankGroup
	LevelBank
	LevelRow
)

// TableLevels are the micro-levels reported in the paper's Tables I and II.
var TableLevels = []Level{
	LevelNPU, LevelHBM, LevelSID, LevelPseudoChannel, LevelBankGroup, LevelBank, LevelRow,
}

var levelNames = map[Level]string{
	LevelNPU:           "NPU",
	LevelHBM:           "HBM",
	LevelSID:           "SID",
	LevelChannel:       "CH",
	LevelPseudoChannel: "PS-CH",
	LevelBankGroup:     "BG",
	LevelBank:          "Bank",
	LevelRow:           "Row",
}

// String returns the paper's abbreviation for the level.
func (l Level) String() string {
	if s, ok := levelNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Bit widths for the packed address encoding. The sum of all widths is 48,
// leaving headroom in a uint64.
const (
	nodeBits = 12
	npuBits  = 4
	hbmBits  = 2
	sidBits  = 1
	chBits   = 3
	pschBits = 1
	bgBits   = 2
	bankBits = 2
	rowBits  = 16
	colBits  = 8
)

// Field shifts, column in the least significant bits.
const (
	colShift  = 0
	rowShift  = colShift + colBits
	bankShift = rowShift + rowBits
	bgShift   = bankShift + bankBits
	pschShift = bgShift + bgBits
	chShift   = pschShift + pschBits
	sidShift  = chShift + chBits
	hbmShift  = sidShift + sidBits
	npuShift  = hbmShift + hbmBits
	nodeShift = npuShift + npuBits
)

// Address identifies a memory location (or a coarser entity, with the finer
// fields zeroed) inside the fleet. All fields are zero-based indices.
type Address struct {
	Node          int
	NPU           int
	HBM           int
	SID           int
	Channel       int
	PseudoChannel int
	BankGroup     int
	Bank          int
	Row           int
	Column        int
}

// Pack encodes the address into a single uint64. Pack and Unpack are inverses
// for any address whose fields are within the geometry's encoding limits.
func (a Address) Pack() uint64 {
	return uint64(a.Node)<<nodeShift |
		uint64(a.NPU)<<npuShift |
		uint64(a.HBM)<<hbmShift |
		uint64(a.SID)<<sidShift |
		uint64(a.Channel)<<chShift |
		uint64(a.PseudoChannel)<<pschShift |
		uint64(a.BankGroup)<<bgShift |
		uint64(a.Bank)<<bankShift |
		uint64(a.Row)<<rowShift |
		uint64(a.Column)<<colShift
}

// Unpack decodes an address previously produced by Pack.
func Unpack(v uint64) Address {
	mask := func(bits int) uint64 { return (1 << bits) - 1 }
	return Address{
		Node:          int(v >> nodeShift & mask(nodeBits)),
		NPU:           int(v >> npuShift & mask(npuBits)),
		HBM:           int(v >> hbmShift & mask(hbmBits)),
		SID:           int(v >> sidShift & mask(sidBits)),
		Channel:       int(v >> chShift & mask(chBits)),
		PseudoChannel: int(v >> pschShift & mask(pschBits)),
		BankGroup:     int(v >> bgShift & mask(bgBits)),
		Bank:          int(v >> bankShift & mask(bankBits)),
		Row:           int(v >> rowShift & mask(rowBits)),
		Column:        int(v >> colShift & mask(colBits)),
	}
}

// Validate reports whether the address is within the geometry's bounds.
func (a Address) Validate(g Geometry) error {
	for _, c := range []struct {
		name string
		v    int
		n    int
	}{
		{"node", a.Node, g.Nodes},
		{"npu", a.NPU, g.NPUsPerNode},
		{"hbm", a.HBM, g.HBMsPerNPU},
		{"sid", a.SID, g.SIDsPerHBM},
		{"channel", a.Channel, g.ChannelsPerSID},
		{"pseudo-channel", a.PseudoChannel, g.PseudoChPerCh},
		{"bank group", a.BankGroup, g.BankGroups},
		{"bank", a.Bank, g.BanksPerGroup},
		{"row", a.Row, g.RowsPerBank},
		{"column", a.Column, g.ColsPerBank},
	} {
		if c.v < 0 || c.v >= c.n {
			return fmt.Errorf("hbm: %s index %d out of range [0,%d)", c.name, c.v, c.n)
		}
	}
	return nil
}

// String renders the address in the canonical dotted form, e.g.
// "n3.u2.h1.s0.c5.p1.g2.b3.r12345.col87".
func (a Address) String() string {
	var b strings.Builder
	b.Grow(48)
	fields := []struct {
		tag string
		v   int
	}{
		{"n", a.Node}, {"u", a.NPU}, {"h", a.HBM}, {"s", a.SID},
		{"c", a.Channel}, {"p", a.PseudoChannel}, {"g", a.BankGroup},
		{"b", a.Bank}, {"r", a.Row}, {"col", a.Column},
	}
	for i, f := range fields {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(f.tag)
		b.WriteString(strconv.Itoa(f.v))
	}
	return b.String()
}

// ParseAddress parses the canonical dotted form produced by String.
func ParseAddress(s string) (Address, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 10 {
		return Address{}, fmt.Errorf("hbm: address %q has %d fields, want 10", s, len(parts))
	}
	var a Address
	for i, spec := range []struct {
		tag string
		dst *int
	}{
		{"n", &a.Node}, {"u", &a.NPU}, {"h", &a.HBM}, {"s", &a.SID},
		{"c", &a.Channel}, {"p", &a.PseudoChannel}, {"g", &a.BankGroup},
		{"b", &a.Bank}, {"r", &a.Row}, {"col", &a.Column},
	} {
		p := parts[i]
		if !strings.HasPrefix(p, spec.tag) {
			return Address{}, fmt.Errorf("hbm: address field %q does not start with %q", p, spec.tag)
		}
		v, err := strconv.Atoi(p[len(spec.tag):])
		if err != nil {
			return Address{}, fmt.Errorf("hbm: address field %q: %w", p, err)
		}
		if v < 0 {
			return Address{}, fmt.Errorf("hbm: address field %q is negative", p)
		}
		*spec.dst = v
	}
	return a, nil
}

// Truncate zeroes every field finer than the given level, producing the
// address of the enclosing entity at that level. For example, truncating at
// LevelBank clears Row and Column.
func (a Address) Truncate(l Level) Address {
	t := a
	switch l {
	case LevelNPU:
		t.HBM = 0
		fallthrough
	case LevelHBM:
		t.SID = 0
		fallthrough
	case LevelSID:
		t.Channel = 0
		fallthrough
	case LevelChannel:
		t.PseudoChannel = 0
		fallthrough
	case LevelPseudoChannel:
		t.BankGroup = 0
		fallthrough
	case LevelBankGroup:
		t.Bank = 0
		fallthrough
	case LevelBank:
		t.Row = 0
		fallthrough
	case LevelRow:
		t.Column = 0
	}
	return t
}

// EntityKey returns a unique packed key for the entity containing the
// address at the given level. Two addresses share a key at level l exactly
// when they fall in the same level-l entity.
func (a Address) EntityKey(l Level) uint64 { return a.Truncate(l).Pack() }

// BankKey is shorthand for EntityKey(LevelBank): a unique identifier for the
// bank containing the address.
func (a Address) BankKey() uint64 { return a.EntityKey(LevelBank) }

// RowKey uniquely identifies a row within the fleet.
func (a Address) RowKey() uint64 { return a.EntityKey(LevelRow) }

// SameBank reports whether two addresses fall in the same bank.
func (a Address) SameBank(b Address) bool { return a.BankKey() == b.BankKey() }

// RowDistance returns |a.Row - b.Row|. It is only meaningful for addresses
// in the same bank.
func RowDistance(a, b Address) int {
	d := a.Row - b.Row
	if d < 0 {
		return -d
	}
	return d
}

// BankAddress identifies one bank in the fleet; it is an Address with row
// and column zeroed, retained as a distinct named type for API clarity.
type BankAddress = Address

// BankOf returns the bank-level address containing a.
func BankOf(a Address) BankAddress { return a.Truncate(LevelBank) }

// RandomSource abstracts the subset of xrand.RNG the package needs, keeping
// hbm free of a dependency on the generator implementation.
type RandomSource interface {
	Intn(n int) int
}

// RandomBank draws a uniformly random bank address within the geometry.
func RandomBank(g Geometry, r RandomSource) BankAddress {
	return Address{
		Node:          r.Intn(g.Nodes),
		NPU:           r.Intn(g.NPUsPerNode),
		HBM:           r.Intn(g.HBMsPerNPU),
		SID:           r.Intn(g.SIDsPerHBM),
		Channel:       r.Intn(g.ChannelsPerSID),
		PseudoChannel: r.Intn(g.PseudoChPerCh),
		BankGroup:     r.Intn(g.BankGroups),
		Bank:          r.Intn(g.BanksPerGroup),
	}
}

// CellInBank returns the full address of (row, col) within the given bank.
func CellInBank(bank BankAddress, row, col int) Address {
	a := bank
	a.Row = row
	a.Column = col
	return a
}

// ClampRow clamps row into [0, g.RowsPerBank).
func (g Geometry) ClampRow(row int) int {
	if row < 0 {
		return 0
	}
	if row >= g.RowsPerBank {
		return g.RowsPerBank - 1
	}
	return row
}
