// Package ecc implements the error-correction substrate that turns raw bit
// faults into the CE / UEO / UER taxonomy the Cordial paper works with.
//
// The code is a (72,64) Hsiao single-error-correcting, double-error-detecting
// (SEC-DED) code: 64 data bits protected by 8 check bits. Hsiao codes assign
// every data bit a distinct odd-weight syndrome column, which makes
// double-bit errors (even-weight syndromes) separable from single-bit errors
// (odd-weight syndromes) with minimal decode logic — the same construction
// used by real memory controllers.
//
// Classification semantics follow §II-B of the paper: errors within the
// correction capability are CEs; uncorrectable errors discovered by patrol
// scrubbing (no consumer touched the data) are UEOs (action optional); and
// uncorrectable errors hit by a demand access are UERs (action required).
package ecc

import "fmt"

// Code geometry.
const (
	// DataBits is the number of protected data bits per codeword.
	DataBits = 64
	// CheckBits is the number of parity-check bits per codeword.
	CheckBits = 8
	// TotalBits is the codeword length.
	TotalBits = DataBits + CheckBits
)

// columns[i] is the 8-bit syndrome column for data bit i. Columns are the
// lexicographically first 64 odd-weight-≥3 byte values, which guarantees
// distinctness from each other and from the weight-1 check-bit columns.
var columns [DataBits]uint8

func init() {
	idx := 0
	for v := 0; v < 256 && idx < DataBits; v++ {
		w := popcount8(uint8(v))
		if w >= 3 && w%2 == 1 {
			columns[idx] = uint8(v)
			idx++
		}
	}
	if idx != DataBits {
		panic("ecc: failed to construct Hsiao columns")
	}
}

func popcount8(v uint8) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Codeword is a 72-bit SEC-DED codeword: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// Encode computes the check bits for data and returns the codeword.
func Encode(data uint64) Codeword {
	var check uint8
	d := data
	for i := 0; d != 0; i++ {
		if d&1 != 0 {
			check ^= columns[i]
		}
		d >>= 1
	}
	return Codeword{Data: data, Check: check}
}

// Outcome is the result of decoding a possibly corrupted codeword.
type Outcome int

// Decode outcomes.
const (
	// OutcomeClean means the syndrome was zero: no detectable error.
	OutcomeClean Outcome = iota + 1
	// OutcomeCorrected means a single-bit error was detected and repaired.
	OutcomeCorrected
	// OutcomeUncorrectable means an error beyond the correction capability
	// was detected (double-bit, or a multi-bit error aliasing to an odd
	// syndrome that matches no column).
	OutcomeUncorrectable
)

// String returns a short human-readable name for the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// DecodeResult carries the outcome of a decode along with the repaired data
// and, for corrected errors, the position of the flipped bit (0..71, data
// bits first, then check bits).
type DecodeResult struct {
	Outcome Outcome
	Data    uint64
	// FlippedBit is the corrected bit position for OutcomeCorrected,
	// -1 otherwise.
	FlippedBit int
}

// Decode checks cw's syndrome and corrects a single-bit error if present.
func Decode(cw Codeword) DecodeResult {
	syndrome := Encode(cw.Data).Check ^ cw.Check
	if syndrome == 0 {
		return DecodeResult{Outcome: OutcomeClean, Data: cw.Data, FlippedBit: -1}
	}
	w := popcount8(syndrome)
	if w%2 == 0 {
		// Even-weight non-zero syndrome: double-bit error detected.
		return DecodeResult{Outcome: OutcomeUncorrectable, Data: cw.Data, FlippedBit: -1}
	}
	if w == 1 {
		// A check bit itself flipped; data is intact.
		for i := 0; i < CheckBits; i++ {
			if syndrome == 1<<i {
				return DecodeResult{Outcome: OutcomeCorrected, Data: cw.Data, FlippedBit: DataBits + i}
			}
		}
	}
	for i := 0; i < DataBits; i++ {
		if columns[i] == syndrome {
			return DecodeResult{Outcome: OutcomeCorrected, Data: cw.Data ^ 1<<i, FlippedBit: i}
		}
	}
	// Odd-weight syndrome matching no column: ≥3-bit error detected.
	return DecodeResult{Outcome: OutcomeUncorrectable, Data: cw.Data, FlippedBit: -1}
}

// FlipBits returns a copy of cw with the given bit positions inverted.
// Positions 0..63 address data bits; 64..71 address check bits. It panics on
// an out-of-range position.
func FlipBits(cw Codeword, positions ...int) Codeword {
	for _, p := range positions {
		switch {
		case p >= 0 && p < DataBits:
			cw.Data ^= 1 << p
		case p >= DataBits && p < TotalBits:
			cw.Check ^= 1 << (p - DataBits)
		default:
			panic(fmt.Sprintf("ecc: FlipBits position %d out of [0,%d)", p, TotalBits))
		}
	}
	return cw
}

// AccessKind distinguishes how a faulty location was touched, which decides
// whether an uncorrectable error is action-optional or action-required.
type AccessKind int

// Access kinds.
const (
	// AccessPatrolScrub is a background patrol-scrub read: no consumer is
	// waiting on the data.
	AccessPatrolScrub AccessKind = iota + 1
	// AccessDemand is a demand read issued by a running workload.
	AccessDemand
)

// String returns a short name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessPatrolScrub:
		return "patrol-scrub"
	case AccessDemand:
		return "demand"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Class is the paper's error taxonomy.
type Class int

// Error classes, per §II-B.
const (
	// ClassNone means the access observed no error.
	ClassNone Class = iota
	// ClassCE is a correctable error: within ECC's correction capability.
	ClassCE
	// ClassUEO is an uncorrectable error found by patrol scrubbing —
	// action optional, since no consumer received corrupt data.
	ClassUEO
	// ClassUER is an uncorrectable error hit by a demand access — action
	// required.
	ClassUER
)

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassCE:
		return "CE"
	case ClassUEO:
		return "UEO"
	case ClassUER:
		return "UER"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts the abbreviations produced by Class.String back to a
// Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "none":
		return ClassNone, nil
	case "CE":
		return ClassCE, nil
	case "UEO":
		return ClassUEO, nil
	case "UER":
		return ClassUER, nil
	default:
		return ClassNone, fmt.Errorf("ecc: unknown error class %q", s)
	}
}

// IsUncorrectable reports whether the class is a UCE (UEO or UER).
func (c Class) IsUncorrectable() bool { return c == ClassUEO || c == ClassUER }

// Classify maps a decode outcome and the access that triggered it to the
// paper's error taxonomy.
func Classify(o Outcome, access AccessKind) Class {
	switch o {
	case OutcomeClean:
		return ClassNone
	case OutcomeCorrected:
		return ClassCE
	case OutcomeUncorrectable:
		if access == AccessPatrolScrub {
			return ClassUEO
		}
		return ClassUER
	default:
		panic(fmt.Sprintf("ecc: Classify called with invalid outcome %d", int(o)))
	}
}

// ReadFaulty encodes data, applies the given bit flips, decodes, and
// classifies the result for the given access kind. It is the one-call path
// the fault simulator uses to turn a physical fault into a logged error
// class. The returned DecodeResult carries the post-correction data.
func ReadFaulty(data uint64, flips []int, access AccessKind) (Class, DecodeResult) {
	cw := FlipBits(Encode(data), flips...)
	res := Decode(cw)
	return Classify(res.Outcome, access), res
}
