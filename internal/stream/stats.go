package stream

import (
	"sort"
	"sync"
	"time"
)

// latencySamplerSize bounds the quantile reservoir. 1024 recent samples
// give stable p50/p99 for a monitoring endpoint without unbounded memory.
const latencySamplerSize = 1024

// latencySampler accumulates duration observations: exact count/sum/max
// plus a ring of recent samples for quantiles. Safe for concurrent use.
type latencySampler struct {
	mu    sync.Mutex
	count uint64
	sum   time.Duration
	max   time.Duration
	ring  [latencySamplerSize]time.Duration
	next  int
}

// observe records one duration.
func (l *latencySampler) observe(d time.Duration) {
	l.mu.Lock()
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.ring[l.next%latencySamplerSize] = d
	l.next++
	l.mu.Unlock()
}

// merge folds other's observations into l (used to aggregate per-shard
// samplers into one snapshot).
func (l *latencySampler) merge(other *latencySampler) {
	other.mu.Lock()
	defer other.mu.Unlock()
	l.count += other.count
	l.sum += other.sum
	if other.max > l.max {
		l.max = other.max
	}
	n := other.next
	if n > latencySamplerSize {
		n = latencySamplerSize
	}
	for i := 0; i < n; i++ {
		l.ring[l.next%latencySamplerSize] = other.ring[i]
		l.next++
	}
}

// LatencySnapshot summarises a latency distribution at one instant. The
// quantiles are computed over a reservoir of recent samples; Count, Mean
// and Max are exact over the sampler's lifetime.
type LatencySnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Mean is the lifetime average.
	Mean time.Duration
	// P50, P90 and P99 are quantiles over recent samples.
	P50, P90, P99 time.Duration
	// Max is the lifetime maximum.
	Max time.Duration
}

// snapshot computes the current summary.
func (l *latencySampler) snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LatencySnapshot{Count: l.count, Max: l.max}
	if l.count == 0 {
		return s
	}
	s.Mean = l.sum / time.Duration(l.count)
	n := l.next
	if n > latencySamplerSize {
		n = latencySamplerSize
	}
	recent := make([]time.Duration, n)
	copy(recent, l.ring[:n])
	sort.Slice(recent, func(i, j int) bool { return recent[i] < recent[j] })
	quantile := func(q float64) time.Duration {
		idx := int(q * float64(n-1))
		return recent[idx]
	}
	s.P50, s.P90, s.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return s
}
