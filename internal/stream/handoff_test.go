package stream

import (
	"bytes"
	"testing"
	"time"

	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/trace"
	"cordial/internal/wal"
)

// sessionStates captures every live session's strategy-state image and
// bookkeeping, keyed by bank key — the bit-identity oracle for handoff.
func sessionStates(t *testing.T, e *Engine) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	for _, s := range e.shards {
		s.mu.Lock()
		for key, bs := range s.sessions {
			ds, ok := bs.sess.(core.DurableSession)
			if !ok {
				s.mu.Unlock()
				t.Fatalf("session %T is not durable", bs.sess)
			}
			blob, err := ds.EncodeState()
			if err != nil {
				s.mu.Unlock()
				t.Fatal(err)
			}
			out[key] = blob
		}
		s.mu.Unlock()
	}
	return out
}

// sessionStatsByKey snapshots every live session's stats, keyed by bank key.
func sessionStatsByKey(e *Engine) map[uint64]SessionStats {
	out := make(map[uint64]SessionStats)
	for _, s := range e.shards {
		s.mu.Lock()
		for key, bs := range s.sessions {
			out[key] = bs.stats
		}
		s.mu.Unlock()
	}
	return out
}

// TestHandoffPortabilityAcrossShardCounts is the snapshot+WAL-suffix
// portability gate: a source engine's persisted state (its last snapshot
// plus the journal suffix — exactly what a dead-node takeover reads off
// disk) imported into a fresh engine with a DIFFERENT shard count must
// reproduce every bank's strategy state bit-for-bit. It extends the PR 4
// crash≡no-crash suite across the transfer path: shard count is a local
// layout choice, so portable state must be invariant to it.
func TestHandoffPortabilityAcrossShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	pipe, err := trainedPipeline()
	if err != nil {
		t.Fatal(err)
	}
	strategy := &core.CordialStrategy{Pipeline: pipe, Geometry: hbm.DefaultGeometry}

	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = 10
	spec.BenignBanks = 8
	spec.Seed = 31
	fleet, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Log.Sort()
	evs := make([]mcelog.Event, fleet.Log.Len())
	for i := range evs {
		evs[i] = fleet.Log.At(i)
	}

	// Source: 4 shards, snapshot mid-stream so the journal suffix carries
	// real work (the import path must replay, not just decode).
	srcDir := t.TempDir()
	src, err := New(durCfg(srcDir, 4, strategy))
	if err != nil {
		t.Fatal(err)
	}
	half := len(evs) / 2
	for _, ev := range evs[:half] {
		if err := src.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[half:] {
		if err := src.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantStates := sessionStates(t, src)
	wantStats := sessionStatsByKey(src)
	if len(wantStates) == 0 {
		t.Fatal("source engine has no sessions")
	}
	if err := src.Close(); err != nil { // the "node dies" moment
		t.Fatal(err)
	}

	// Takeover read: newest snapshot + full journal export off the dead
	// node's directory — per-session watermarks deduplicate the overlap.
	_, payload, err := wal.LoadLatestSnapshot(nil, srcDir)
	if err != nil {
		t.Fatal(err)
	}
	srcWAL, err := wal.Open(srcDir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	suffix, err := srcWAL.ExportRange(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := srcWAL.Close(); err != nil {
		t.Fatal(err)
	}
	if len(suffix) == 0 {
		t.Fatal("no journal suffix to replay — the test lost its point")
	}

	// Importer: 7 shards, its own durability directory.
	dst, err := New(durCfg(t.TempDir(), 7, strategy))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	st, err := dst.ImportSessions(payload, suffix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Conflicts != 0 || st.Quarantined != 0 {
		t.Fatalf("import stats %+v: want no conflicts or quarantines", st)
	}
	if st.Sessions != len(wantStates) {
		t.Fatalf("imported %d sessions, want %d", st.Sessions, len(wantStates))
	}
	if st.Replayed == 0 {
		t.Fatal("import replayed nothing; suffix path untested")
	}

	gotStates := sessionStates(t, dst)
	for key, want := range wantStates {
		got, ok := gotStates[key]
		if !ok {
			t.Errorf("bank %#x missing after import", key)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("bank %#x strategy state differs after handoff (%d vs %d bytes)", key, len(got), len(want))
		}
	}
	if len(gotStates) != len(wantStates) {
		t.Errorf("importer has %d sessions, want %d", len(gotStates), len(wantStates))
	}
	gotStats := sessionStatsByKey(dst)
	for key, want := range wantStats {
		got := gotStats[key]
		if got.Events != want.Events || got.UEREvents != want.UEREvents ||
			got.DistinctUERRows != want.DistinctUERRows || got.Classified != want.Classified ||
			got.Class != want.Class || got.BankSpared != want.BankSpared ||
			got.RowsIsolated != want.RowsIsolated {
			t.Errorf("bank %#x stats diverged:\n got %+v\nwant %+v", key, got, want)
		}
	}

	// The importer snapshotted on import; a restart over its directory must
	// come back with the same state (import-before-ack durability).
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := New(durCfg(dst.cfg.Durability.Dir, 3, strategy))
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	rebornStates := sessionStates(t, reborn)
	if len(rebornStates) != len(wantStates) {
		t.Fatalf("reborn importer has %d sessions, want %d", len(rebornStates), len(wantStates))
	}
	for key, want := range wantStates {
		if !bytes.Equal(rebornStates[key], want) {
			t.Errorf("bank %#x state lost across importer restart", key)
		}
	}
}

// TestHandoffFilteredExportImport covers the live-rebalance shape: the
// source exports only the banks that move, the importer adopts only the
// banks it owns, and re-importing the same payload is a counted no-op.
func TestHandoffFilteredExportImport(t *testing.T) {
	src := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}, Shards: 2})
	defer src.Close()
	moved, kept := testBank(2), testBank(4)
	for i, bank := range []hbm.BankAddress{moved, kept} {
		for row := 1; row <= 4; row++ {
			if err := src.Ingest(uerAt(bank, row, i*10+row)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := src.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	movedKey := moved.BankKey()
	payload, err := src.ExportSessions(func(key uint64) bool { return key == movedKey })
	if err != nil {
		t.Fatal(err)
	}

	dst := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}, Shards: 3})
	defer dst.Close()
	st, err := dst.ImportSessions(payload, nil, func(key uint64) bool { return key == movedKey })
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Conflicts != 0 {
		t.Fatalf("import stats %+v, want exactly the moved session", st)
	}
	if _, ok := dst.Session(kept); ok {
		t.Error("importer adopted a bank outside the filter")
	}
	want := sessionStates(t, src)[movedKey]
	if got := sessionStates(t, dst)[movedKey]; !bytes.Equal(got, want) {
		t.Error("moved bank's state differs after filtered handoff")
	}

	// Double delivery (a control-plane retry) must be a counted no-op.
	st2, err := dst.ImportSessions(payload, nil, func(key uint64) bool { return key == movedKey })
	if err != nil {
		t.Fatal(err)
	}
	if st2.Sessions != 0 || st2.Conflicts != 1 {
		t.Fatalf("re-import stats %+v, want a pure conflict", st2)
	}
}

// TestHandoffSuffixCreatesUnseenSessions: a bank whose first error landed
// after the source's last snapshot exists only in the journal suffix; the
// importer must build its session from scratch and derive its actions.
func TestHandoffSuffixCreatesUnseenSessions(t *testing.T) {
	dst := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}, Shards: 2})
	defer dst.Close()

	bank := testBank(2) // even index: fake strategy bank-spares at budget
	var suffix []wal.Record
	for row := 1; row <= 4; row++ {
		ev := uerAt(bank, row, row)
		suffix = append(suffix, wal.Record{LSN: uint64(100 + row), Payload: encodeEventRecord(ev)})
	}
	// Empty-but-valid payload: a source that never snapshotted.
	empty, err := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}}).ExportSessions(nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dst.ImportSessions(empty, suffix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Replayed != 4 {
		t.Fatalf("import stats %+v, want one fresh session with 4 replayed events", st)
	}
	sess, ok := dst.Session(bank)
	if !ok {
		t.Fatal("suffix-only bank has no session")
	}
	if sess.Events != 4 || sess.UEREvents != 4 {
		t.Errorf("suffix-only session stats %+v", sess)
	}
	if st.Actions == 0 {
		t.Error("no actions re-derived from suffix replay")
	}
}

// TestHandoffImportRejectsGarbage: payload and suffix corruption are hard
// errors, never partial adoption.
func TestHandoffImportRejectsGarbage(t *testing.T) {
	dst := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}})
	defer dst.Close()
	if _, err := dst.ImportSessions([]byte("junk-payload"), nil, nil); err == nil {
		t.Error("garbage payload accepted")
	}
	empty, err := dst.ExportSessions(func(uint64) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	bad := []wal.Record{{LSN: 1, Payload: []byte("short")}}
	if _, err := dst.ImportSessions(empty, bad, nil); err == nil {
		t.Error("garbage suffix record accepted")
	}
	if n := dst.SessionCount(); n != 0 {
		t.Errorf("%d sessions adopted from garbage", n)
	}
}

// TestHandoffReplayRespectsWatermarks: suffix records at or below a
// session's source watermark are already inside its snapshot image and
// must be skipped, or replay would double-apply them.
func TestHandoffReplayRespectsWatermarks(t *testing.T) {
	dir := t.TempDir()
	src, err := New(durCfg(dir, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	bank := testBank(3) // odd index: row-spare strategy, state keeps growing
	for row := 1; row <= 3; row++ {
		if err := src.Ingest(uerAt(bank, row, row)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := sessionStates(t, src)[bank.BankKey()]
	wantEvents := sessionStatsByKey(src)[bank.BankKey()].Events
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	_, payload, err := wal.LoadLatestSnapshot(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	srcWAL, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Full journal: every record here is below the snapshot watermark.
	suffix, err := srcWAL.ExportRange(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	srcWAL.Close()

	dst := newTestEngine(t, Config{Strategy: &fakeStrategy{budget: 3}, Shards: 3})
	defer dst.Close()
	st, err := dst.ImportSessions(payload, suffix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.Skipped != len(suffix) {
		t.Fatalf("import stats %+v: watermark should have skipped all %d records", st, len(suffix))
	}
	got := sessionStates(t, dst)[bank.BankKey()]
	if !bytes.Equal(got, want) {
		t.Error("watermark-covered replay changed session state")
	}
	if gotEvents := sessionStatsByKey(dst)[bank.BankKey()].Events; gotEvents != wantEvents {
		t.Errorf("events double-counted: %d, want %d", gotEvents, wantEvents)
	}
}
