package stream

import (
	"math"
	"sort"
	"sync"
	"time"

	"cordial/internal/obs"
)

// latencySamplerSize bounds the quantile reservoir. 1024 recent samples
// give stable p50/p99 for a monitoring endpoint without unbounded memory.
const latencySamplerSize = 1024

// latencySampler accumulates duration observations: exact count/sum/max
// plus a ring of recent samples for quantiles. Safe for concurrent use.
//
// When a histogram is attached (attach), every observation is mirrored
// into it, so the Prometheus view on /metrics and the quantile view on
// /statsz derive from the same observe() calls — one source of truth,
// two renderings.
type latencySampler struct {
	hist *obs.Histogram // nil-safe; shared across shards for one metric

	mu    sync.Mutex
	count uint64
	sum   time.Duration
	max   time.Duration
	ring  [latencySamplerSize]time.Duration
	next  int
}

// attach mirrors future observations into h (call before any observe).
func (l *latencySampler) attach(h *obs.Histogram) { l.hist = h }

// observe records one duration.
func (l *latencySampler) observe(d time.Duration) {
	l.hist.Observe(d.Seconds())
	l.mu.Lock()
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.ring[l.next%latencySamplerSize] = d
	l.next++
	l.mu.Unlock()
}

// merge folds other's observations into l (used to aggregate per-shard
// samplers into one snapshot). Samples are copied oldest-first: a wrapped
// ring (other.next > latencySamplerSize) starts at its eviction cursor,
// an unwrapped one at index 0, so the destination ring stays in
// chronological order and later wrap-around evicts the oldest samples
// first. Not mirrored into the histogram — merge aggregates observations
// that were already counted at their original observe site.
func (l *latencySampler) merge(other *latencySampler) {
	other.mu.Lock()
	defer other.mu.Unlock()
	l.count += other.count
	l.sum += other.sum
	if other.max > l.max {
		l.max = other.max
	}
	n := other.next
	start := 0
	if n > latencySamplerSize {
		// Wrapped: the oldest surviving sample sits where the next write
		// would land.
		n = latencySamplerSize
		start = other.next % latencySamplerSize
	}
	for i := 0; i < n; i++ {
		l.ring[l.next%latencySamplerSize] = other.ring[(start+i)%latencySamplerSize]
		l.next++
	}
}

// LatencySnapshot summarises a latency distribution at one instant. The
// quantiles are computed over a reservoir of recent samples; Count, Mean
// and Max are exact over the sampler's lifetime.
type LatencySnapshot struct {
	// Count is the number of observations.
	Count uint64
	// Mean is the lifetime average.
	Mean time.Duration
	// P50, P90 and P99 are quantiles over recent samples.
	P50, P90, P99 time.Duration
	// Max is the lifetime maximum.
	Max time.Duration
}

// nearestRank returns the nearest-rank quantile of sorted: the smallest
// element whose rank r (1-based) satisfies r >= ceil(q*n). Unlike floor
// indexing (int(q*(n-1))), this never understates the tail: for q=0.99
// and n=10 it returns the 10th sample, not the 9th.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// snapshot computes the current summary.
func (l *latencySampler) snapshot() LatencySnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LatencySnapshot{Count: l.count, Max: l.max}
	if l.count == 0 {
		return s
	}
	s.Mean = l.sum / time.Duration(l.count)
	n := l.next
	if n > latencySamplerSize {
		n = latencySamplerSize
	}
	recent := make([]time.Duration, n)
	copy(recent, l.ring[:n])
	sort.Slice(recent, func(i, j int) bool { return recent[i] < recent[j] })
	s.P50, s.P90, s.P99 = nearestRank(recent, 0.50), nearestRank(recent, 0.90), nearestRank(recent, 0.99)
	return s
}
