package mcelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// Wire streaming format ("CBF2" — cordial binary frames, version 2).
//
// JSONL ingest pays a JSON parse and several allocations per event; at
// fleet rates the wire becomes the bottleneck before the predictor does.
// This format is the streaming counterpart of the MCEL file codec: the
// same fixed 19-byte record, length-prefixed into CRC-framed batches so a
// reader can decode incrementally with zero allocations and reject a
// corrupt or truncated frame before acting on any of its events.
//
//	stream: magic "CBF2"
//	frame:  uint32 payload length | uint32 CRC-32C over payload | payload
//	record: int64 unix-nanos | uint64 packed addr | uint8 class | uint16 error bits   (×N)
//
// All integers are little-endian. A frame's payload is a whole number of
// records (at least one, at most MaxWireFrameBytes total). Clean EOF on a
// frame boundary ends the stream; EOF inside a frame is truncation and is
// reported as an error. The CRC is the Castagnoli polynomial (hardware-
// accelerated on amd64/arm64), the same one the WAL uses — a frame's
// payload bytes are exactly what the durable engine journals per event.
//
// Decoders also accept the previous "CBF1" stream, whose 17-byte records
// lack the error-bit field; its events decode with Bits zero. Encoders
// always emit CBF2.
const (
	wireMagic   = "CBF2"
	wireMagicV1 = "CBF1"

	wireFrameHdrSize = 8 // u32 payload length | u32 crc32c(payload)

	// WireRecordSize is the fixed per-event record size, shared with the
	// MCEL file codec and the engine's WAL event records.
	WireRecordSize = 19

	// wireRecordSizeV1 is the record size of the legacy CBF1 stream.
	wireRecordSizeV1 = 17
)

// MaxWireFrameBytes caps one frame's payload. Decoded lengths are
// attacker-controlled on corrupt input, so the decoder rejects anything
// larger before allocating; encoders flush before reaching it.
const MaxWireFrameBytes = 1 << 20

// wireCRCTable is the Castagnoli polynomial table for frame checksums.
var wireCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWireFrame reports a malformed binary stream: bad magic, an
// implausible length prefix, a checksum mismatch, or truncation inside a
// frame. The stream cannot be trusted past this point.
var ErrWireFrame = errors.New("mcelog: malformed binary frame")

// AppendWireRecord appends one event's fixed-size record to dst.
func AppendWireRecord(dst []byte, ev Event) []byte {
	var rec [WireRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(ev.Time.UnixNano()))
	binary.LittleEndian.PutUint64(rec[8:16], ev.Addr.Pack())
	rec[16] = byte(ev.Class)
	binary.LittleEndian.PutUint16(rec[17:19], uint16(ev.Bits))
	return append(dst, rec[:]...)
}

// DecodeWireRecord unpacks one fixed-size record. The class byte is not
// validated here — callers validate events against their geometry, which
// subsumes the class check.
func DecodeWireRecord(rec []byte) Event {
	_ = rec[WireRecordSize-1]
	return Event{
		Time:  time.Unix(0, int64(binary.LittleEndian.Uint64(rec[0:8]))).UTC(),
		Addr:  hbm.Unpack(binary.LittleEndian.Uint64(rec[8:16])),
		Class: ecc.Class(rec[16]),
		Bits:  ErrBits(binary.LittleEndian.Uint16(rec[17:19])),
	}
}

// decodeWireRecordV1 unpacks a legacy 17-byte CBF1 record (no error bits).
func decodeWireRecordV1(rec []byte) Event {
	_ = rec[wireRecordSizeV1-1]
	return Event{
		Time:  time.Unix(0, int64(binary.LittleEndian.Uint64(rec[0:8]))).UTC(),
		Addr:  hbm.Unpack(binary.LittleEndian.Uint64(rec[8:16])),
		Class: ecc.Class(rec[16]),
	}
}

// WireFrame is a decoded, checksum-verified view over one frame's payload.
// It borrows the decoder's buffer: valid only until the next call to Next
// or Reset.
type WireFrame struct {
	payload []byte
	recSize int
}

// Len returns the number of events in the frame.
func (f WireFrame) Len() int { return len(f.payload) / f.recSize }

// Event decodes record i. It allocates nothing.
func (f WireFrame) Event(i int) Event {
	rec := f.payload[i*f.recSize : (i+1)*f.recSize]
	if f.recSize == wireRecordSizeV1 {
		return decodeWireRecordV1(rec)
	}
	return DecodeWireRecord(rec)
}

// FrameDecoder reads a "CBF1" stream frame by frame. The zero value is
// not usable; construct with NewFrameDecoder and reuse across streams via
// Reset — the payload buffer is retained, so steady-state decoding
// allocates nothing (pinned by TestWireDecodeZeroAllocs).
type FrameDecoder struct {
	r       io.Reader
	buf     []byte
	hdr     [wireFrameHdrSize]byte
	opened  bool // magic consumed
	recSize int  // per-record size implied by the stream's magic
}

// NewFrameDecoder returns a decoder over r.
func NewFrameDecoder(r io.Reader) *FrameDecoder {
	d := &FrameDecoder{}
	d.Reset(r)
	return d
}

// Reset points the decoder at a new stream, keeping its buffers.
func (d *FrameDecoder) Reset(r io.Reader) {
	d.r = r
	d.opened = false
}

// Next returns the next frame. io.EOF means the stream ended cleanly on a
// frame boundary (an entirely empty stream — not even a magic — is also a
// clean end, so a zero-length HTTP body decodes as zero events). Any
// other error wraps ErrWireFrame and poisons the stream.
func (d *FrameDecoder) Next() (WireFrame, error) {
	if !d.opened {
		if _, err := io.ReadFull(d.r, d.hdr[:4]); err != nil {
			if err == io.EOF {
				return WireFrame{}, io.EOF
			}
			return WireFrame{}, fmt.Errorf("%w: truncated magic: %w", ErrWireFrame, err)
		}
		switch string(d.hdr[:4]) {
		case wireMagic:
			d.recSize = WireRecordSize
		case wireMagicV1:
			d.recSize = wireRecordSizeV1
		default:
			return WireFrame{}, fmt.Errorf("%w: bad magic %q", ErrWireFrame, d.hdr[:4])
		}
		d.opened = true
	}
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.EOF {
			return WireFrame{}, io.EOF // clean end on a frame boundary
		}
		return WireFrame{}, fmt.Errorf("%w: truncated frame header: %w", ErrWireFrame, err)
	}
	length := binary.LittleEndian.Uint32(d.hdr[0:4])
	crc := binary.LittleEndian.Uint32(d.hdr[4:8])
	switch {
	case length == 0:
		return WireFrame{}, fmt.Errorf("%w: empty frame", ErrWireFrame)
	case length > MaxWireFrameBytes:
		return WireFrame{}, fmt.Errorf("%w: frame of %d bytes exceeds max %d", ErrWireFrame, length, MaxWireFrameBytes)
	case length%uint32(d.recSize) != 0:
		return WireFrame{}, fmt.Errorf("%w: frame of %d bytes is not a whole number of %d-byte records", ErrWireFrame, length, d.recSize)
	}
	if cap(d.buf) < int(length) {
		d.buf = make([]byte, length)
	}
	d.buf = d.buf[:length]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		// Double-wrap: callers match ErrWireFrame for framing policy and
		// still reach the transport cause (e.g. *http.MaxBytesError → 413).
		return WireFrame{}, fmt.Errorf("%w: truncated payload: %w", ErrWireFrame, err)
	}
	if sum := crc32.Checksum(d.buf, wireCRCTable); sum != crc {
		return WireFrame{}, fmt.Errorf("%w: payload checksum mismatch: computed %#x, stored %#x", ErrWireFrame, sum, crc)
	}
	return WireFrame{payload: d.buf, recSize: d.recSize}, nil
}

// FrameEncoder writes a "CBF1" stream. Events accumulate into a pending
// frame that is emitted once it holds maxEvents records or on Flush; call
// Flush before trusting that every added event is on the wire.
type FrameEncoder struct {
	w         io.Writer
	buf       []byte // pending frame payload
	hdr       [wireFrameHdrSize]byte
	maxEvents int
	opened    bool
}

// DefaultFrameEvents is the records-per-frame target an encoder uses when
// none is given: large enough to amortise framing and fsync costs, small
// enough that one frame stays well under MaxWireFrameBytes.
const DefaultFrameEvents = 1024

// NewFrameEncoder returns an encoder over w batching maxEvents records
// per frame (0 means DefaultFrameEvents).
func NewFrameEncoder(w io.Writer, maxEvents int) *FrameEncoder {
	if maxEvents <= 0 {
		maxEvents = DefaultFrameEvents
	}
	if max := MaxWireFrameBytes / WireRecordSize; maxEvents > max {
		maxEvents = max
	}
	return &FrameEncoder{w: w, maxEvents: maxEvents}
}

// Reset points the encoder at a new stream, keeping its buffer.
func (e *FrameEncoder) Reset(w io.Writer) {
	e.w = w
	e.buf = e.buf[:0]
	e.opened = false
}

// Add appends one event to the pending frame, flushing it when full.
func (e *FrameEncoder) Add(ev Event) error {
	e.buf = AppendWireRecord(e.buf, ev)
	if len(e.buf) >= e.maxEvents*WireRecordSize {
		return e.Flush()
	}
	return nil
}

// Flush emits the pending frame, if any. The stream magic is written
// lazily with the first frame, so an encoder that never saw an event
// writes nothing at all.
func (e *FrameEncoder) Flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	if !e.opened {
		if _, err := io.WriteString(e.w, wireMagic); err != nil {
			return fmt.Errorf("mcelog: writing stream magic: %w", err)
		}
		e.opened = true
	}
	binary.LittleEndian.PutUint32(e.hdr[0:4], uint32(len(e.buf)))
	binary.LittleEndian.PutUint32(e.hdr[4:8], crc32.Checksum(e.buf, wireCRCTable))
	if _, err := e.w.Write(e.hdr[:]); err != nil {
		return fmt.Errorf("mcelog: writing frame header: %w", err)
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("mcelog: writing frame payload: %w", err)
	}
	e.buf = e.buf[:0]
	return nil
}
