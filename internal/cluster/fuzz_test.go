package cluster

import (
	"testing"
)

// FuzzRingPlacement fuzzes the two properties routing correctness rests
// on: placement is deterministic (two independent builds of the same
// descriptor agree on every key) and total (every key has an owner on any
// non-empty ring). The membership shape and the probed key are both
// fuzzer-controlled.
func FuzzRingPlacement(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint64(0))
	f.Add(uint8(3), uint16(16), uint64(0x10002000400))
	f.Add(uint8(8), uint16(128), uint64(^uint64(0)))
	f.Fuzz(func(t *testing.T, nMembers uint8, vnodes uint16, key uint64) {
		n := int(nMembers%16) + 1 // 1..16 members
		desc := Descriptor{
			Epoch:   uint64(vnodes) + 1,
			VNodes:  int(vnodes % 256), // 0 exercises the default
			Members: members(n),
		}
		r1, err := BuildRing(desc)
		if err != nil {
			t.Fatalf("BuildRing: %v", err)
		}
		r2, err := BuildRing(desc)
		if err != nil {
			t.Fatalf("BuildRing (rebuild): %v", err)
		}
		o1, ok := r1.Owner(key)
		if !ok {
			t.Fatalf("key %#x has no owner on a %d-member ring", key, n)
		}
		if o2 := r2.OwnerID(key); o1.ID != o2 {
			t.Fatalf("key %#x placed on %s and %s by identical descriptors", key, o1.ID, o2)
		}
		if _, found := desc.Member(o1.ID); !found {
			t.Fatalf("key %#x placed on unknown member %q", key, o1.ID)
		}
		// Owns must agree with Owner for every member.
		for _, m := range desc.Members {
			if got, want := r1.Owns(m.ID, key), m.ID == o1.ID; got != want {
				t.Fatalf("Owns(%s, %#x) = %v, owner is %s", m.ID, key, got, o1.ID)
			}
		}
	})
}
