package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/metrics"
	"cordial/internal/mltree"
	"cordial/internal/xrand"
)

// Config configures a Cordial pipeline.
type Config struct {
	// Model selects the tree-ensemble backend for both stages.
	Model ModelKind
	// Params tunes the ensembles.
	Params ModelParams
	// Pattern configures pattern-feature extraction (first-3-UER budget).
	Pattern features.PatternConfig
	// Block configures the cross-row window geometry (16×8 by default).
	Block features.BlockSpec
	// Threshold is the block-positive probability cutoff. Zero (the
	// default) means calibrate automatically during Fit: the block task is
	// imbalanced (typically 1-2 positive blocks of 16) and the calibrated
	// cutoff maximises F1 on the training instances.
	Threshold float64
	// ErrBits appends the intra-word error-bit features (DQ/burst pattern
	// aggregates) to the pattern-classification vector. Off by default:
	// fleets whose BMCs report no syndrome detail gain nothing from the
	// extra columns, and the flag must match between training and serving
	// (it is persisted with the model).
	ErrBits bool
	// Seed drives model randomness.
	Seed uint64
}

// DefaultConfig returns the paper-faithful configuration for the given
// backend.
func DefaultConfig(kind ModelKind) Config {
	return Config{
		Model:   kind,
		Pattern: features.DefaultPatternConfig(),
		Block:   features.DefaultBlockSpec(),
		Seed:    1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Model {
	case RandomForest, XGBoost, LightGBM:
	default:
		return fmt.Errorf("core: invalid model kind %d", int(c.Model))
	}
	if err := c.Block.Validate(); err != nil {
		return err
	}
	if c.Threshold < 0 || c.Threshold >= 1 {
		return fmt.Errorf("core: threshold %g out of [0,1) (0 = auto-calibrate)", c.Threshold)
	}
	if c.Pattern.UERBudget < 1 {
		return fmt.Errorf("core: pattern UER budget %d < 1", c.Pattern.UERBudget)
	}
	return nil
}

// Pipeline is a trained Cordial instance: a pattern classifier plus a
// cross-row block predictor. Construct with New, then Fit. A fitted
// pipeline's predict methods are safe for concurrent use.
type Pipeline struct {
	cfg          Config
	patternModel mltree.Classifier
	blockModel   mltree.Classifier
	meta         *ModelMeta
}

// New returns an unfitted pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Pattern.UERBudget == 0 {
		cfg.Pattern = features.DefaultPatternConfig()
	}
	if cfg.Block.WindowRadius == 0 && cfg.Block.BlockSize == 0 {
		cfg.Block = features.DefaultBlockSpec()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// patternVectorOf renders the state's pattern vector under the pipeline's
// configuration, appending the error-bit features when enabled.
func patternVectorOf(st *features.BankState, errBits bool) ([]float64, error) {
	vec, err := st.PatternVector()
	if err != nil {
		return nil, err
	}
	if errBits {
		eb, err := st.ErrBitVector()
		if err != nil {
			return nil, err
		}
		vec = append(vec, eb...)
	}
	return vec, nil
}

// patternFeatureNames returns the pattern-stage column names, including the
// error-bit columns when enabled.
func patternFeatureNames(errBits bool) []string {
	names := features.PatternFeatureNames()
	if errBits {
		names = append(names, features.ErrBitFeatureNames()...)
	}
	return names
}

// Fit trains both stages on the ground-truth labelled training banks.
func (p *Pipeline) Fit(banks []*faultsim.BankFault) error {
	patternDS, err := BuildPatternDataset(banks, p.cfg.Pattern, p.cfg.ErrBits)
	if err != nil {
		return err
	}
	pm, err := NewModel(p.cfg.Model, p.cfg.Params, p.cfg.Seed)
	if err != nil {
		return err
	}
	if err := pm.Fit(patternDS); err != nil {
		return fmt.Errorf("core: fitting pattern model: %w", err)
	}
	p.patternModel = pm

	blockDS, err := BuildBlockDataset(banks, p.cfg.Block, p.cfg.Pattern.UERBudget)
	if err != nil {
		return err
	}
	bm, err := NewModel(p.cfg.Model, p.cfg.Params, p.cfg.Seed+1)
	if err != nil {
		return err
	}
	if err := bm.Fit(blockDS); err != nil {
		return fmt.Errorf("core: fitting block model: %w", err)
	}
	p.blockModel = bm

	if p.cfg.Threshold == 0 {
		thr, err := crossFitThreshold(p.cfg, blockDS)
		if err != nil {
			return fmt.Errorf("core: calibrating threshold: %w", err)
		}
		p.cfg.Threshold = thr
	}
	p.meta = buildMeta(banks, p.cfg.Params)
	return nil
}

// crossFitThreshold calibrates the block threshold on a held-out fold: a
// clone of the block model is fitted on 75% of the instances and the
// F1-maximising cutoff is searched on the remaining 25%. Calibrating on the
// final model's own training predictions would be badly biased for Random
// Forest, whose in-bag probabilities are close to the labels.
func crossFitThreshold(cfg Config, blockDS *mltree.Dataset) (float64, error) {
	calTrain, calVal, err := blockDS.StratifiedSplit(xrand.New(cfg.Seed+2), 0.75)
	if err != nil {
		return 0, err
	}
	cm, err := NewModel(cfg.Model, cfg.Params, cfg.Seed+3)
	if err != nil {
		return 0, err
	}
	if err := cm.Fit(calTrain); err != nil {
		return 0, err
	}
	return calibrateThreshold(cm, calVal), nil
}

// calibrateThreshold grid-searches the probability cutoff that maximises F1
// over the training block instances. Ensemble probabilities on an
// imbalanced task concentrate well below 0.5, so a fixed cutoff would
// silently predict nothing; calibration keeps the operating point sane for
// every backend.
func calibrateThreshold(model mltree.Classifier, ds *mltree.Dataset) float64 {
	classes := model.Classes()
	posIdx := -1
	for i, c := range classes {
		if c == 1 {
			posIdx = i
		}
	}
	if posIdx < 0 {
		return 0.5
	}
	probs := make([]float64, ds.NumSamples())
	for i, pr := range model.PredictBatch(ds.Features) {
		probs[i] = pr[posIdx]
	}
	best, bestF1 := 0.5, -1.0
	for thr := 0.05; thr < 0.90; thr += 0.025 {
		var bin metrics.Binary
		for i, p := range probs {
			bin.Add(ds.Labels[i] == 1, p >= thr)
		}
		if f1 := bin.Report().F1; f1 > bestF1 {
			best, bestF1 = thr, f1
		}
	}
	return best
}

// Fitted reports whether both stages have been trained.
func (p *Pipeline) Fitted() bool { return p.patternModel != nil && p.blockModel != nil }

// NewBankState returns an empty incremental feature accumulator matching
// the pipeline's pattern and block configuration, ready to drive the
// state-based predict methods.
func (p *Pipeline) NewBankState() (*features.BankState, error) {
	return features.NewBankState(p.cfg.Pattern, p.cfg.Block)
}

// replayState builds a feature state over a complete event slice. The
// slice-based predict methods are defined as exactly this replay followed
// by the state-based variant.
func (p *Pipeline) replayState(events []mcelog.Event) (*features.BankState, error) {
	st, err := p.NewBankState()
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		st.Observe(e)
	}
	return st, nil
}

// ClassifyPattern predicts the bank-level failure class from the bank's
// events (using the configured first-K-UER budget). It is the slice
// convenience form of ClassifyPatternState: the events are replayed once
// through a fresh feature state.
func (p *Pipeline) ClassifyPattern(events []mcelog.Event) (faultsim.Class, error) {
	st, err := p.replayState(events)
	if err != nil {
		return 0, err
	}
	return p.ClassifyPatternState(st)
}

// ClassifyPatternState predicts the bank-level failure class from an
// incrementally maintained feature state, without revisiting the event
// history. This is the online engine's O(1)-per-event path.
func (p *Pipeline) ClassifyPatternState(st *features.BankState) (faultsim.Class, error) {
	if p.patternModel == nil {
		return 0, fmt.Errorf("core: pipeline not fitted")
	}
	vec, err := patternVectorOf(st, p.cfg.ErrBits)
	if err != nil {
		return 0, err
	}
	return faultsim.Class(mltree.Predict(p.patternModel, vec)), nil
}

// PredictBlocks returns the per-block UER probability for the window
// anchored at anchorRow, given the events observed up to now. It is the
// slice convenience form of PredictBlocksState.
func (p *Pipeline) PredictBlocks(events []mcelog.Event, anchorRow int, now time.Time) ([]float64, error) {
	st, err := p.replayState(events)
	if err != nil {
		return nil, err
	}
	return p.PredictBlocksState(st, anchorRow, now)
}

// PredictBlocksState returns the per-block UER probability for the window
// anchored at anchorRow, computed from an incrementally maintained feature
// state at decision time now.
func (p *Pipeline) PredictBlocksState(st *features.BankState, anchorRow int, now time.Time) ([]float64, error) {
	if p.blockModel == nil {
		return nil, fmt.Errorf("core: pipeline not fitted")
	}
	probs := make([]float64, p.cfg.Block.NumBlocks())
	classes := p.blockModel.Classes()
	posIdx := -1
	for i, c := range classes {
		if c == 1 {
			posIdx = i
		}
	}
	if posIdx < 0 {
		return nil, fmt.Errorf("core: block model has no positive class")
	}
	// Build every block's feature vector, then score the whole window in
	// one batch call: the per-event hot path of the stream engine benefits
	// from the flat-tree batch driver instead of 16 scattered single-row
	// predictions.
	vecs := make([][]float64, len(probs))
	for b := range vecs {
		vec, err := st.BlockVector(anchorRow, b, now)
		if err != nil {
			return nil, err
		}
		vecs[b] = vec
	}
	for b, pr := range p.blockModel.PredictBatch(vecs) {
		probs[b] = pr[posIdx]
	}
	return probs, nil
}

// PredictRows converts block probabilities into the concrete rows Cordial
// would isolate: every row of every block whose probability clears the
// threshold, clipped to the bank geometry.
func (p *Pipeline) PredictRows(probs []float64, anchorRow int, geo hbm.Geometry) []int {
	var rows []int
	for b, prob := range probs {
		if prob < p.cfg.Threshold {
			continue
		}
		lo, hi := p.cfg.Block.BlockRange(anchorRow, b)
		for r := lo; r <= hi; r++ {
			if r >= 0 && r < geo.RowsPerBank {
				rows = append(rows, r)
			}
		}
	}
	sort.Ints(rows)
	return rows
}

// savedHeader persists the effective configuration (including the
// calibrated threshold) ahead of the two models.
type savedHeader struct {
	Threshold float64                `json:"threshold"`
	Pattern   features.PatternConfig `json:"pattern"`
	Block     features.BlockSpec     `json:"block"`
	Model     ModelKind              `json:"model"`
	// ErrBits records whether the pattern model was trained with the
	// error-bit feature columns; serving must match. Omitted when false so
	// older readers see an unchanged header.
	ErrBits bool `json:"errbits,omitempty"`
	// Meta carries the training provenance. Optional in both directions:
	// pre-metadata files decode with a nil Meta, and files written here
	// still load under older readers (unknown JSON fields are ignored).
	Meta *ModelMeta `json:"meta,omitempty"`
}

// SaveModels serialises the effective configuration and the two fitted
// models (pattern first, block second) to w.
func (p *Pipeline) SaveModels(w io.Writer) error {
	if !p.Fitted() {
		return fmt.Errorf("core: pipeline not fitted")
	}
	head := savedHeader{
		Threshold: p.cfg.Threshold,
		Pattern:   p.cfg.Pattern,
		Block:     p.cfg.Block,
		Model:     p.cfg.Model,
		ErrBits:   p.cfg.ErrBits,
		Meta:      p.meta,
	}
	if err := json.NewEncoder(w).Encode(head); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if err := mltree.Save(w, p.patternModel); err != nil {
		return err
	}
	return mltree.Save(w, p.blockModel)
}

// LoadModels restores the configuration and models previously written by
// SaveModels.
func (p *Pipeline) LoadModels(r io.Reader) error {
	dec := json.NewDecoder(r)
	var head savedHeader
	if err := dec.Decode(&head); err != nil {
		return fmt.Errorf("core: reading model header: %w", err)
	}
	// Continue decoding from the same buffered stream.
	mdec := mltree.NewDecoderFromJSON(dec)
	pm, err := mdec.Decode()
	if err != nil {
		return fmt.Errorf("core: loading pattern model: %w", err)
	}
	bm, err := mdec.Decode()
	if err != nil {
		return fmt.Errorf("core: loading block model: %w", err)
	}
	p.cfg.Threshold = head.Threshold
	p.cfg.Pattern = head.Pattern
	p.cfg.Block = head.Block
	p.cfg.Model = head.Model
	p.cfg.ErrBits = head.ErrBits
	p.meta = head.Meta
	p.patternModel, p.blockModel = pm, bm
	return nil
}

// Strategy is a mitigation policy driven by a bank's event stream. The
// evaluator replays events in time order through a per-bank Session and
// applies the returned decisions.
type Strategy interface {
	// Name identifies the strategy in reports (e.g. "Cordial-RF").
	Name() string
	// NewSession returns fresh per-bank state.
	NewSession(bank hbm.BankAddress) Session
}

// Session consumes one bank's events in time order.
type Session interface {
	// OnEvent reacts to the next event and returns the decision taken at
	// this step (the zero Decision means "do nothing").
	OnEvent(e mcelog.Event) Decision
}

// ClassifiedSession is optionally implemented by sessions that expose the
// failure class their pattern stage assigned. Streaming consumers use it
// for inspection without re-deriving the classification.
type ClassifiedSession interface {
	Session
	// Class returns the assigned class; ok is false until the pattern
	// stage has fired.
	Class() (class faultsim.Class, ok bool)
}

// InstrumentedSession is optionally implemented by sessions that expose
// the memory footprint of their incremental feature state. The stream
// engine uses it for the bounded-memory accounting surfaced by
// Engine.Stats and the statsz endpoint.
type InstrumentedSession interface {
	Session
	// StateFootprint returns the session's current feature-state size;
	// released reports that the state has been dropped after a terminal
	// decision (bank spared), in which case the footprint is zero.
	StateFootprint() (fp features.StateFootprint, released bool)
}

// Decision is a mitigation step taken at one event.
type Decision struct {
	// SpareBank requests bank sparing (scattered pattern policy).
	SpareBank bool
	// IsolateRows requests row-granular isolation of the given rows.
	IsolateRows []int
	// Blocks records a block-level prediction made at this step, for the
	// Table IV block metrics; nil when the strategy made none.
	Blocks *BlockPrediction
}

// BlockPrediction is one window prediction: the anchor row and a predicted
// mask over the window's blocks. Probs optionally carries the per-block
// probabilities for threshold-free metrics (AUC); strategies without scores
// leave it nil.
type BlockPrediction struct {
	AnchorRow int
	Predicted []bool
	Probs     []float64
}

// CordialStrategy adapts a fitted pipeline to the Strategy interface,
// implementing §IV's policy: wait for the pattern budget of UERs, classify,
// bank-spare scattered banks, and for aggregation banks run cross-row block
// prediction at every observed UER from then on, row-sparing predicted rows.
type CordialStrategy struct {
	Pipeline *Pipeline
	Geometry hbm.Geometry
}

var _ Strategy = (*CordialStrategy)(nil)

// Name returns "Cordial-<backend>".
func (s *CordialStrategy) Name() string {
	return "Cordial-" + s.Pipeline.Config().Model.ShortName()
}

// NewSession returns per-bank state: an incremental feature accumulator
// instead of an event buffer, so per-event cost and memory stay flat over
// the session's life.
func (s *CordialStrategy) NewSession(bank hbm.BankAddress) Session {
	st, err := s.Pipeline.NewBankState()
	if err != nil {
		// Only reachable with a hand-rolled invalid config; the session
		// then takes no decisions rather than panicking the replay loop.
		st = nil
	}
	return &cordialSession{strategy: s, state: st}
}

type cordialSession struct {
	strategy *CordialStrategy
	// state accumulates the bank's features incrementally; nil once
	// released after a terminal decision (bank spared).
	state *features.BankState

	classified bool
	class      faultsim.Class
}

var (
	_ ClassifiedSession   = (*cordialSession)(nil)
	_ InstrumentedSession = (*cordialSession)(nil)
)

// Class returns the pattern class assigned at the UER budget; ok is false
// before classification.
func (s *cordialSession) Class() (faultsim.Class, bool) { return s.class, s.classified }

// StateFootprint reports the feature accumulator's size; released is true
// once the session dropped its state after bank sparing.
func (s *cordialSession) StateFootprint() (features.StateFootprint, bool) {
	if s.state == nil {
		return features.StateFootprint{}, true
	}
	return s.state.Footprint(), false
}

func (s *cordialSession) OnEvent(e mcelog.Event) Decision {
	if s.state == nil {
		// Bank already spared: no further decision can change, and the
		// feature state has been released.
		return Decision{}
	}
	prevDistinct := s.state.DistinctUERRows()
	s.state.Observe(e)
	if e.Class != ecc.ClassUER || s.state.DistinctUERRows() == prevDistinct {
		return Decision{} // not a UER, or a repeat of a known failed row
	}

	pipe := s.strategy.Pipeline
	if s.state.DistinctUERRows() < pipe.Config().Pattern.UERBudget {
		return Decision{}
	}
	if !s.classified {
		class, err := pipe.ClassifyPatternState(s.state)
		if err != nil {
			return Decision{}
		}
		s.classified = true
		s.class = class
		if !class.IsAggregation() {
			s.state = nil // terminal: release the accumulator
			return Decision{SpareBank: true}
		}
	}
	anchor := e.Addr.Row
	probs, err := pipe.PredictBlocksState(s.state, anchor, e.Time)
	if err != nil {
		return Decision{}
	}
	mask := make([]bool, len(probs))
	for b, p := range probs {
		mask[b] = p >= pipe.Config().Threshold
	}
	rows := pipe.PredictRows(probs, anchor, s.strategy.Geometry)
	return Decision{
		IsolateRows: rows,
		Blocks:      &BlockPrediction{AnchorRow: anchor, Predicted: mask, Probs: probs},
	}
}

// PatternImportance returns the fitted pattern model's feature importances
// (depth-weighted split frequency), most important first.
func (p *Pipeline) PatternImportance() ([]mltree.Importance, error) {
	if p.patternModel == nil {
		return nil, fmt.Errorf("core: pipeline not fitted")
	}
	return mltree.SplitImportance(p.patternModel, patternFeatureNames(p.cfg.ErrBits))
}

// BlockImportance returns the fitted cross-row block model's feature
// importances, most important first.
func (p *Pipeline) BlockImportance() ([]mltree.Importance, error) {
	if p.blockModel == nil {
		return nil, fmt.Errorf("core: pipeline not fitted")
	}
	return mltree.SplitImportance(p.blockModel, features.BlockFeatureNames())
}
