package mltree

import (
	"fmt"
	"math"

	"cordial/internal/xrand"
)

// Criterion selects the impurity measure for classification splits.
type Criterion int

// Split criteria.
const (
	// Gini is the Gini impurity (CART default).
	Gini Criterion = iota + 1
	// Entropy is the Shannon-entropy information gain.
	Entropy
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// TreeConfig configures a single CART decision tree.
type TreeConfig struct {
	// MaxDepth bounds tree depth; <=0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum samples in each child.
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split;
	// 0 means all, -1 means round(sqrt(numFeatures)).
	MaxFeatures int
	// Criterion selects the impurity measure (default Gini).
	Criterion Criterion
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	if c.Criterion == 0 {
		c.Criterion = Gini
	}
	return c
}

// resolveMaxFeatures turns the MaxFeatures convention into a concrete count.
func (c TreeConfig) resolveMaxFeatures(numFeatures int) int {
	switch {
	case c.MaxFeatures == 0 || c.MaxFeatures >= numFeatures:
		return numFeatures
	case c.MaxFeatures == -1:
		k := int(math.Round(math.Sqrt(float64(numFeatures))))
		if k < 1 {
			k = 1
		}
		return k
	case c.MaxFeatures > 0:
		return c.MaxFeatures
	default:
		return numFeatures
	}
}

// treeNode is one node of a fitted tree. Leaves carry a class-probability
// vector (classification) or a scalar (regression boosting).
type treeNode struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      *treeNode `json:"l,omitempty"`
	Right     *treeNode `json:"r,omitempty"`
	Probs     []float64 `json:"p,omitempty"`
	Value     float64   `json:"v,omitempty"`

	// bin is the split's histogram bin for trees grown over pre-binned
	// features ("binned[i][Feature] <= bin" is equivalent to
	// "x[Feature] <= Threshold" for every training row). It exists only
	// during training — not serialised, not needed for inference.
	bin int
}

func (n *treeNode) isLeaf() bool { return n.Left == nil && n.Right == nil }

// navigate walks the tree for sample x and returns the leaf.
func (n *treeNode) navigate(x []float64) *treeNode {
	cur := n
	for !cur.isLeaf() {
		if x[cur.Feature] <= cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur
}

// navigateBinned walks a tree grown over pre-binned features using a binned
// row, avoiding the float comparisons (and the raw feature matrix) entirely.
// Valid only for nodes whose bin field was set during histogram growth; the
// descent is bit-identical to navigate on the raw row.
func (n *treeNode) navigateBinned(row []uint16) *treeNode {
	cur := n
	for !cur.isLeaf() {
		if int(row[cur.Feature]) <= cur.bin {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur
}

func (n *treeNode) depth() int {
	if n == nil || n.isLeaf() {
		return 0
	}
	l, r := n.Left.depth(), n.Right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

func (n *treeNode) countLeaves() int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return n.Left.countLeaves() + n.Right.countLeaves()
}

// Tree is a CART decision-tree classifier.
type Tree struct {
	Config  TreeConfig
	root    *treeNode
	flat    *flatTree
	classes []int
	rng     *xrand.RNG
}

// NewTree returns a tree classifier. rng drives feature subsampling; pass
// nil to consider all features deterministically.
func NewTree(cfg TreeConfig, rng *xrand.RNG) *Tree {
	return &Tree{Config: cfg.withDefaults(), rng: rng}
}

var _ Classifier = (*Tree)(nil)

// Classes returns the labels seen during Fit.
func (t *Tree) Classes() []int { return t.classes }

// Depth returns the fitted tree's depth (0 for a stump/leaf-only tree).
func (t *Tree) Depth() int { return t.root.depth() }

// NumLeaves returns the fitted tree's leaf count.
func (t *Tree) NumLeaves() int { return t.root.countLeaves() }

// Fit grows the tree on the dataset.
func (t *Tree) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	t.fitValidated(ds)
	return nil
}

// fitValidated grows the tree assuming ds has already been validated.
func (t *Tree) fitValidated(ds *Dataset) {
	classes := ds.Classes()
	idx := classIndex(classes)
	y := make([]int, ds.NumSamples())
	for i, l := range ds.Labels {
		y[i] = idx[l]
	}
	samples := make([]int, ds.NumSamples())
	for i := range samples {
		samples[i] = i
	}
	cols := columnize(ds.Features)
	t.fitFromSorted(cols, y, classes, presortByFeature(cols, samples))
}

// fitFromSorted grows the tree from prepared training state: a columnized
// feature matrix, class-index labels, the class list, and per-feature
// sorted sample lists (possibly a multiset of rows — the forest passes
// bootstrap bags derived from a shared base presort). sorted is consumed;
// cols and y are only read.
func (t *Tree) fitFromSorted(cols [][]float64, y []int, classes []int, sorted [][]int32) {
	t.classes = classes
	b := &classBuilder{
		cfg:     t.Config,
		cols:    cols,
		y:       y,
		k:       len(classes),
		rng:     t.rng,
		maxFeat: t.Config.resolveMaxFeatures(len(cols)),
	}
	t.root = b.build(sorted, 0)
	t.flat = compileTree(t.root)
}

// deriveSorted filters a base presort down to a bootstrap bag: each base
// row appears mult[i] times, adjacently, at its sorted position. This is
// order-equivalent to sorting the bag itself (duplicates share a value) and
// costs O(features × n) instead of a sort per member.
func deriveSorted(base [][]int32, mult []int, bag int) [][]int32 {
	backing := make([]int32, len(base)*bag)
	out := make([][]int32, len(base))
	for f, lst := range base {
		d := backing[f*bag : f*bag : (f+1)*bag]
		for _, i := range lst {
			for c := mult[i]; c > 0; c-- {
				d = append(d, i)
			}
		}
		out[f] = d
	}
	return out
}

// PredictProba returns the class distribution of the leaf x lands in.
func (t *Tree) PredictProba(x []float64) []float64 {
	var probs []float64
	if t.flat != nil {
		probs = t.flat.leafProbs(x)
	} else {
		probs = t.root.navigate(x).Probs
	}
	out := make([]float64, len(probs))
	copy(out, probs)
	return out
}

// PredictBatch predicts every row of X, in parallel across rows.
func (t *Tree) PredictBatch(X [][]float64) [][]float64 {
	return predictBatch(X, 0, t.PredictProba)
}

// columnize transposes the row-major feature matrix into per-feature
// columns backed by one contiguous allocation. Split search is dominated by
// random accesses into a single feature at a time; a column of a few
// thousand float64s stays resident in L1/L2, where row-pointer chasing
// would miss on every sample.
func columnize(features [][]float64) [][]float64 {
	n := len(features)
	numFeatures := len(features[0])
	backing := make([]float64, n*numFeatures)
	cols := make([][]float64, numFeatures)
	for f := range cols {
		cols[f] = backing[f*n : (f+1)*n]
	}
	for i, row := range features {
		for f, v := range row {
			cols[f][i] = v
		}
	}
	return cols
}

// orderableBits maps a float64 to a uint64 whose unsigned order matches the
// float's numeric order (sign bit flipped for positives, all bits flipped
// for negatives) — the classic radix-sortable float encoding.
func orderableBits(v float64) uint64 {
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// radixSortPairs stably sorts idx by keys with an LSD byte radix — no
// comparator calls, so it runs several times faster than a comparison sort
// on these sizes. keysAlt/idxAlt are same-length scratch. Passes whose byte
// is constant across all keys (common: exponent bytes of same-scale
// features) are skipped. Returns the sorted index slice (one of idx/idxAlt,
// depending on pass parity).
func radixSortPairs(keys []uint64, idx []int32, keysAlt []uint64, idxAlt []int32) []int32 {
	var counts [256]int
	for shift := 0; shift < 64; shift += 8 {
		first := byte(keys[0] >> shift)
		constant := true
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			b := byte(k >> shift)
			counts[b]++
			constant = constant && b == first
		}
		if constant {
			continue
		}
		pos := 0
		for b := range counts {
			c := counts[b]
			counts[b] = pos
			pos += c
		}
		for i, k := range keys {
			b := byte(k >> shift)
			p := counts[b]
			counts[b] = p + 1
			keysAlt[p] = k
			idxAlt[p] = idx[i]
		}
		keys, keysAlt = keysAlt, keys
		idx, idxAlt = idxAlt, idx
	}
	return idx
}

// presortByFeature returns, for every feature, the sample indices ordered by
// that feature's value — the per-fit presort that removes sorting from the
// per-node split search entirely. Node recursion maintains these orders by
// stable partition, so only the root ever pays a sort at all. Features sort
// independently in parallel; the orders (and anything derived from them)
// are identical for any worker count.
func presortByFeature(cols [][]float64, samples []int) [][]int32 {
	numFeatures := len(cols)
	sorted := make([][]int32, numFeatures)
	want := 1
	if len(samples)*numFeatures >= minParallelSplitWork {
		want = numFeatures
	}
	n := len(samples)
	backing := make([]int32, numFeatures*n)
	runWorkers(numFeatures, want, func(_, f int) {
		col := cols[f]
		keys := make([]uint64, n)
		idx := make([]int32, n)
		for i, s := range samples {
			idx[i] = int32(s)
			keys[i] = orderableBits(col[s])
		}
		seg := backing[f*n : (f+1)*n]
		copy(seg, radixSortPairs(keys, idx, make([]uint64, n), make([]int32, n)))
		sorted[f] = seg
	})
	return sorted
}

// partitioner performs the stable in-place partition of per-feature sorted
// lists at each split. The lists must be segments of per-feature arenas:
// left entries compact to the segment's front, right entries to its back,
// and children receive subslices of the same memory — zero list allocation
// per node. One membership buffer and per-worker copy buffers are reused
// down the (serial) recursion.
type partitioner struct {
	inLeft []bool    // split membership, indexed by sample id
	bufs   [][]int32 // per-worker right-side copy buffers
	n      int       // sample-id space size (len(cols[0]))
}

func newPartitioner(n int) *partitioner {
	return &partitioner{
		inLeft: make([]bool, n),
		bufs:   make([][]int32, maxExtraWorkers+1),
		n:      n,
	}
}

// split partitions every feature's list around the chosen split, preserving
// order, and returns views of the left/right segments. Membership is a byte
// lookup in inLeft, marked from the split feature's first nl sorted
// entries — exactly the samples with value <= threshold. Features partition
// independently in parallel.
func (p *partitioner) split(sorted [][]int32, feat, nl int) (left, right [][]int32) {
	for _, i := range sorted[feat][:nl] {
		p.inLeft[i] = true
	}
	m := len(sorted[0])
	left = make([][]int32, len(sorted))
	right = make([][]int32, len(sorted))
	want := 1
	if m*len(sorted) >= minParallelSplitWork {
		want = len(sorted)
	}
	runWorkers(len(sorted), want, func(worker, f int) {
		buf := p.bufs[worker]
		if buf == nil {
			buf = make([]int32, p.n)
			p.bufs[worker] = buf
		}
		lst := sorted[f]
		w, nr := 0, 0
		for _, i := range lst {
			if p.inLeft[i] {
				lst[w] = i
				w++
			} else {
				buf[nr] = i
				nr++
			}
		}
		copy(lst[w:], buf[:nr])
		left[f] = lst[:w]
		right[f] = lst[w:]
	})
	for _, i := range left[feat] {
		p.inLeft[i] = false
	}
	return left, right
}

// copyLists clones per-feature sorted lists into a fresh contiguous arena,
// so a cached presort survives the in-place partitioning of one tree's
// growth (GBDT reuses the root presort across rounds).
func copyLists(src [][]int32) [][]int32 {
	n := len(src[0])
	backing := make([]int32, len(src)*n)
	out := make([][]int32, len(src))
	for f, lst := range src {
		seg := backing[f*n : (f+1)*n]
		copy(seg, lst)
		out[f] = seg
	}
	return out
}

// splitCand is one feature's best split, produced independently per feature
// so split search can fan out across features and still reduce in
// deterministic candidate order.
type splitCand struct {
	gain float64
	feat int
	thr  float64
	nl   int // left-child size (exact-split paths)
	bin  int // histogram split bin (HistGBDT path only)
	ok   bool
}

// minClassGain is the impurity-decrease floor below which a classification
// split is not worth making.
const minClassGain = 1e-12

// classScratch is one worker's reusable class-count buffers.
type classScratch struct {
	leftCounts  []float64
	rightCounts []float64
}

// classBuilder grows a classification tree recursively.
type classBuilder struct {
	cfg     TreeConfig
	cols    [][]float64 // column-major feature matrix (see columnize)
	y       []int
	k       int
	rng     *xrand.RNG
	maxFeat int

	// scratches holds per-worker buffers for feature-parallel split
	// search; worker ids from runWorkers index it.
	scratches [](*classScratch)

	// part performs the in-place list partition at each split.
	part *partitioner
}

// scratch returns worker's buffer set, allocating it on first use. The
// scratches slice itself must already exist (allocated on the fan-out
// goroutine); per-slot writes are safe because worker ids are unique among
// concurrently live workers.
func (b *classBuilder) scratch(worker int) *classScratch {
	sc := b.scratches[worker]
	if sc == nil {
		sc = &classScratch{
			leftCounts:  make([]float64, b.k),
			rightCounts: make([]float64, b.k),
		}
		b.scratches[worker] = sc
	}
	return sc
}

// build grows the subtree over sorted (per-feature sorted sample lists; all
// lists hold the same member set).
func (b *classBuilder) build(sorted [][]int32, depth int) *treeNode {
	samples := sorted[0]
	n := len(samples)
	counts := make([]float64, b.k)
	for _, i := range samples {
		counts[b.y[i]]++
	}
	leaf := func() *treeNode {
		probs := make([]float64, b.k)
		for c, v := range counts {
			probs[c] = v / float64(n)
		}
		return &treeNode{Probs: probs}
	}
	if n < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		isPure(counts) {
		return leaf()
	}
	feat, thr, nl, ok := b.bestSplit(sorted, counts)
	if !ok || nl < b.cfg.MinSamplesLeaf || n-nl < b.cfg.MinSamplesLeaf {
		return leaf()
	}
	if b.part == nil {
		b.part = newPartitioner(len(b.cols[0]))
	}
	left, right := b.part.split(sorted, feat, nl)
	return &treeNode{
		Feature:   feat,
		Threshold: thr,
		Left:      b.build(left, depth+1),
		Right:     b.build(right, depth+1),
	}
}

func isPure(counts []float64) bool {
	nonZero := 0
	for _, c := range counts {
		if c > 0 {
			nonZero++
		}
	}
	return nonZero <= 1
}

// impurity computes Gini or entropy from class counts summing to n.
func impurity(counts []float64, n float64, crit Criterion) float64 {
	if n == 0 {
		return 0
	}
	switch crit {
	case Entropy:
		h := 0.0
		for _, c := range counts {
			if c > 0 {
				p := c / n
				h -= p * math.Log2(p)
			}
		}
		return h
	default: // Gini
		g := 1.0
		for _, c := range counts {
			p := c / n
			g -= p * p
		}
		return g
	}
}

// bestSplit searches the sampled feature subset for the split with the
// largest impurity decrease, fanning candidate features out over the shared
// worker pool. Each feature is scored independently over its presorted
// sample list and the winners reduce in candidate order with a strict
// greater-than, which reproduces the serial scan's tie-breaking (first
// feature, then first threshold, to reach the maximum) bit for bit. It
// returns ok=false when no valid split exists.
func (b *classBuilder) bestSplit(sorted [][]int32, parentCounts []float64) (feat int, thr float64, nl int, ok bool) {
	n := float64(len(sorted[0]))
	parentImp := impurity(parentCounts, n, b.cfg.Criterion)

	candidates := b.featureCandidates(len(sorted))

	cands := make([]splitCand, len(candidates))
	want := 1
	if len(sorted[0])*len(candidates) >= minParallelSplitWork {
		want = len(candidates)
	}
	if b.scratches == nil {
		b.scratches = make([]*classScratch, maxExtraWorkers+1)
	}
	runWorkers(len(candidates), want, func(worker, ci int) {
		cands[ci] = b.evalFeature(candidates[ci], sorted[candidates[ci]], parentCounts, parentImp, n, b.scratch(worker))
	})

	bestGain := minClassGain
	for _, c := range cands {
		if c.ok && c.gain > bestGain {
			bestGain, feat, thr, nl, ok = c.gain, c.feat, c.thr, c.nl, true
		}
	}
	return feat, thr, nl, ok
}

// evalFeature scores every threshold of one feature by a single pass over
// its presorted sample list and returns the first threshold attaining the
// feature's maximum gain above the floor.
func (b *classBuilder) evalFeature(f int, list []int32, parentCounts []float64, parentImp, n float64, sc *classScratch) splitCand {
	col := b.cols[f]
	if col[list[0]] == col[list[len(list)-1]] {
		return splitCand{} // constant feature
	}
	leftCounts, rightCounts := sc.leftCounts, sc.rightCounts
	for c := range leftCounts {
		leftCounts[c] = 0
		rightCounts[c] = parentCounts[c]
	}
	best := splitCand{gain: minClassGain, feat: f}
	for i := 0; i < len(list)-1; i++ {
		yi := b.y[list[i]]
		leftCounts[yi]++
		rightCounts[yi]--
		v, vNext := col[list[i]], col[list[i+1]]
		if v == vNext {
			continue
		}
		cl, cr := float64(i+1), n-float64(i+1)
		if i+1 < b.cfg.MinSamplesLeaf || len(list)-i-1 < b.cfg.MinSamplesLeaf {
			continue
		}
		childImp := (cl*impurity(leftCounts, cl, b.cfg.Criterion) +
			cr*impurity(rightCounts, cr, b.cfg.Criterion)) / n
		gain := parentImp - childImp
		if gain > best.gain {
			best.gain = gain
			best.thr = (v + vNext) / 2
			best.nl = i + 1
			best.ok = true
		}
	}
	return best
}

// featureCandidates returns the features to consider at one split.
func (b *classBuilder) featureCandidates(numFeatures int) []int {
	if b.maxFeat >= numFeatures || b.rng == nil {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.SampleInts(numFeatures, b.maxFeat)
}

// regTree grows regression trees on gradient/hessian pairs with the
// XGBoost-style regularised gain; it is the weak learner inside GBDT.
type regTree struct {
	cfg     TreeConfig
	lambda  float64
	gamma   float64
	minHess float64
	rng     *xrand.RNG
	maxFeat int

	cols [][]float64 // column-major feature matrix (see columnize)
	grad []float64
	hess []float64

	// part performs the in-place list partition at each split; shared
	// across a boosting chain's rounds (recursion is serial per chain).
	part *partitioner
}

// fit grows the tree over the given sample indices and returns its root.
func (r *regTree) fit(samples []int) *treeNode {
	return r.build(presortByFeature(r.cols, samples), 0)
}

func (r *regTree) build(sorted [][]int32, depth int) *treeNode {
	samples := sorted[0]
	n := len(samples)
	var g, h float64
	for _, i := range samples {
		g += r.grad[i]
		h += r.hess[i]
	}
	leaf := func() *treeNode {
		return &treeNode{Value: -g / (h + r.lambda)}
	}
	if n < r.cfg.MinSamplesSplit ||
		(r.cfg.MaxDepth > 0 && depth >= r.cfg.MaxDepth) {
		return leaf()
	}
	feat, thr, nl, ok := r.bestSplit(sorted, g, h)
	if !ok || nl < r.cfg.MinSamplesLeaf || n-nl < r.cfg.MinSamplesLeaf {
		return leaf()
	}
	if r.part == nil {
		r.part = newPartitioner(len(r.cols[0]))
	}
	left, right := r.part.split(sorted, feat, nl)
	return &treeNode{
		Feature:   feat,
		Threshold: thr,
		Left:      r.build(left, depth+1),
		Right:     r.build(right, depth+1),
	}
}

// bestSplit maximises the XGBoost structure-score gain
// 0.5*(GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)) − γ, feature-parallel with the
// same deterministic reduction as the classification search.
func (r *regTree) bestSplit(sorted [][]int32, g, h float64) (feat int, thr float64, nl int, ok bool) {
	candidates := r.featureCandidates(len(sorted))

	cands := make([]splitCand, len(candidates))
	want := 1
	if len(sorted[0])*len(candidates) >= minParallelSplitWork {
		want = len(candidates)
	}
	runWorkers(len(candidates), want, func(_, ci int) {
		cands[ci] = r.evalFeature(candidates[ci], sorted[candidates[ci]], g, h)
	})

	bestGain := 0.0
	for _, c := range cands {
		if c.ok && c.gain > bestGain {
			bestGain, feat, thr, nl, ok = c.gain, c.feat, c.thr, c.nl, true
		}
	}
	return feat, thr, nl, ok
}

// evalFeature scores every threshold of one feature against the regularised
// gain in one pass over its presorted sample list, returning the first
// threshold attaining the feature's maximum.
func (r *regTree) evalFeature(f int, list []int32, g, h float64) splitCand {
	score := func(gs, hs float64) float64 { return gs * gs / (hs + r.lambda) }
	parent := score(g, h)

	col := r.cols[f]
	if col[list[0]] == col[list[len(list)-1]] {
		return splitCand{}
	}
	best := splitCand{feat: f}
	var gl, hl float64
	for i := 0; i < len(list)-1; i++ {
		gl += r.grad[list[i]]
		hl += r.hess[list[i]]
		v, vNext := col[list[i]], col[list[i+1]]
		if v == vNext {
			continue
		}
		if i+1 < r.cfg.MinSamplesLeaf || len(list)-i-1 < r.cfg.MinSamplesLeaf {
			continue
		}
		gr, hr := g-gl, h-hl
		if hl < r.minHess || hr < r.minHess {
			continue
		}
		gain := 0.5*(score(gl, hl)+score(gr, hr)-parent) - r.gamma
		if gain > best.gain {
			best.gain = gain
			best.thr = (v + vNext) / 2
			best.nl = i + 1
			best.ok = true
		}
	}
	return best
}

func (r *regTree) featureCandidates(numFeatures int) []int {
	if r.maxFeat >= numFeatures || r.rng == nil {
		all := make([]int, numFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return r.rng.SampleInts(numFeatures, r.maxFeat)
}
