package mcelog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// wireTestEvents builds n distinct valid events under the default geometry.
func wireTestEvents(n int) []Event { return wireTestEventsFor(hbm.DefaultGeometry, n) }

// wireTestEventsFor builds n events valid under the given geometry. The
// rank/device dimensions use the zero-means-one normalisation so the same
// helper serves HBM and DIMM profiles.
func wireTestEventsFor(g hbm.Geometry, n int) []Event {
	dim := func(d int) int {
		if d < 1 {
			return 1
		}
		return d
	}
	evs := make([]Event, n)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	classes := []ecc.Class{ecc.ClassCE, ecc.ClassUEO, ecc.ClassUER}
	for i := range evs {
		evs[i] = Event{
			Time: base.Add(time.Duration(i) * time.Millisecond),
			Addr: hbm.Address{
				Node:          i % g.Nodes,
				NPU:           i % g.NPUsPerNode,
				HBM:           i % g.HBMsPerNPU,
				SID:           i % g.SIDsPerHBM,
				Channel:       i % g.ChannelsPerSID,
				PseudoChannel: i % g.PseudoChPerCh,
				Rank:          i % dim(g.RanksPerModule),
				Device:        i % dim(g.DevicesPerRank),
				BankGroup:     i % g.BankGroups,
				Bank:          i % g.BanksPerGroup,
				Row:           i % g.RowsPerBank,
				Column:        i % g.ColsPerBank,
			},
			Class: classes[i%len(classes)],
		}
	}
	return evs
}

// encodeWireStream renders events into frames of frameEvents records each.
func encodeWireStream(t testing.TB, evs []Event, frameEvents int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf, frameEvents)
	for _, ev := range evs {
		if err := enc.Add(ev); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func decodeWireStream(t testing.TB, data []byte) []Event {
	t.Helper()
	dec := NewFrameDecoder(bytes.NewReader(data))
	var out []Event
	for {
		fr, err := dec.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := 0; i < fr.Len(); i++ {
			out = append(out, fr.Event(i))
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, frameEvents := range []int{1, 3, 64, 0} {
		evs := wireTestEvents(257)
		data := encodeWireStream(t, evs, frameEvents)
		got := decodeWireStream(t, data)
		if len(got) != len(evs) {
			t.Fatalf("frameEvents=%d: decoded %d events, want %d", frameEvents, len(got), len(evs))
		}
		for i := range evs {
			if !got[i].Time.Equal(evs[i].Time) || got[i].Addr != evs[i].Addr || got[i].Class != evs[i].Class {
				t.Fatalf("frameEvents=%d: event %d mismatch: got %+v want %+v", frameEvents, i, got[i], evs[i])
			}
		}
	}
}

func TestWireEmptyStream(t *testing.T) {
	// Zero bytes is a clean zero-event stream (an empty HTTP body), and so
	// is a stream holding only the magic.
	for _, data := range [][]byte{nil, []byte(wireMagic)} {
		dec := NewFrameDecoder(bytes.NewReader(data))
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("Next on %d-byte stream: got %v, want io.EOF", len(data), err)
		}
	}
	// An encoder that never saw an event writes nothing, matching.
	var buf bytes.Buffer
	if err := NewFrameEncoder(&buf, 8).Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty encoder wrote %d bytes", buf.Len())
	}
}

func TestWireDecodeErrors(t *testing.T) {
	evs := wireTestEvents(10)
	good := encodeWireStream(t, evs, 5)

	corrupt := func(mutate func(b []byte) []byte) error {
		b := mutate(append([]byte(nil), good...))
		dec := NewFrameDecoder(bytes.NewReader(b))
		for {
			if _, err := dec.Next(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
	}

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated magic", func(b []byte) []byte { return b[:2] }},
		{"truncated header", func(b []byte) []byte { return b[:4+3] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"flipped crc", func(b []byte) []byte { b[4+4] ^= 1; return b }},
		{"zero length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 0)
			return b
		}},
		{"oversize length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], MaxWireFrameBytes+WireRecordSize)
			return b
		}},
		{"ragged length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], WireRecordSize+1)
			return b
		}},
	}
	for _, tc := range cases {
		err := corrupt(tc.mutate)
		if err == nil {
			t.Errorf("%s: decoded cleanly, want ErrWireFrame", tc.name)
			continue
		}
		if !errors.Is(err, ErrWireFrame) {
			t.Errorf("%s: error %v does not wrap ErrWireFrame", tc.name, err)
		}
	}
}

// TestWireDecodeZeroAllocs pins the tentpole property: once the decoder's
// buffer has warmed up, decoding a stream allocates nothing.
func TestWireDecodeZeroAllocs(t *testing.T) {
	evs := wireTestEvents(4096)
	data := encodeWireStream(t, evs, 512)
	dec := NewFrameDecoder(bytes.NewReader(nil))
	var rd bytes.Reader
	var sink int
	allocs := testing.AllocsPerRun(50, func() {
		rd.Reset(data)
		dec.Reset(&rd)
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			for i := 0; i < fr.Len(); i++ {
				ev := fr.Event(i)
				sink += ev.Addr.Row + int(ev.Class)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocated %.1f times per stream, want 0", allocs)
	}
	_ = sink
}

// TestWireProfileMatrix re-runs the round trip and the zero-alloc pin under
// every registered topology profile: packed addresses on the wire follow the
// active profile's layout, so both ends must agree, and the decode path must
// stay allocation-free regardless of topology.
func TestWireProfileMatrix(t *testing.T) {
	for _, name := range hbm.ProfileNames() {
		p, err := hbm.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			prev := hbm.ActivateProfile(p)
			defer hbm.ActivateProfile(prev)

			evs := wireTestEventsFor(p.Geometry, 1024)
			for i := range evs {
				evs[i].Bits = ErrBits(uint16(i*2654435761) & 0x7f3f)
			}
			data := encodeWireStream(t, evs, 128)
			got := decodeWireStream(t, data)
			if len(got) != len(evs) {
				t.Fatalf("decoded %d events, want %d", len(got), len(evs))
			}
			for i := range evs {
				if !got[i].Time.Equal(evs[i].Time) || got[i].Addr != evs[i].Addr ||
					got[i].Class != evs[i].Class || got[i].Bits != evs[i].Bits {
					t.Fatalf("event %d mismatch: got %+v want %+v", i, got[i], evs[i])
				}
			}

			dec := NewFrameDecoder(bytes.NewReader(nil))
			var rd bytes.Reader
			var sink int
			allocs := testing.AllocsPerRun(20, func() {
				rd.Reset(data)
				dec.Reset(&rd)
				for {
					fr, err := dec.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatalf("Next: %v", err)
					}
					for i := 0; i < fr.Len(); i++ {
						ev := fr.Event(i)
						sink += ev.Addr.Row + int(ev.Class)
					}
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state decode under %s allocated %.1f times per stream, want 0", name, allocs)
			}
			_ = sink
		})
	}
}

// FuzzBinaryFrameDecode mirrors FuzzWALDecode for the wire framing:
// arbitrary bytes must decode to frames whose checksums re-verify, or
// produce an error — never a panic, never an over-allocation.
func FuzzBinaryFrameDecode(f *testing.F) {
	evs := wireTestEvents(9)
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf, 4)
	for _, ev := range evs {
		if err := enc.Add(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated payload
	f.Add([]byte(wireMagic))  // magic only
	f.Add([]byte{})           // empty stream
	f.Add([]byte("CBF0"))     // wrong magic
	oversize := append([]byte(wireMagic), make([]byte, wireFrameHdrSize)...)
	binary.LittleEndian.PutUint32(oversize[4:8], MaxWireFrameBytes+1)
	f.Add(oversize) // oversize length prefix
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x40
	f.Add(bad) // CRC mismatch
	// Correctly framed but poisoned payload: all-ones timestamp (pre-epoch
	// once sign-extended), out-of-geometry packed address, junk class byte.
	// The framing layer must pass it through (its CRC is valid) and leave
	// the rejection to per-record validation — decoding must not panic.
	poison := make([]byte, WireRecordSize)
	for i := range poison {
		poison[i] = 0xff
	}
	f.Add(append([]byte(wireMagic), encodeFrame(poison)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewFrameDecoder(bytes.NewReader(data))
		total := 0
		for {
			fr, err := dec.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrWireFrame) {
					t.Fatalf("non-frame error from decoder: %v", err)
				}
				break
			}
			if fr.Len() < 1 || len(fr.payload)%WireRecordSize != 0 {
				t.Fatalf("accepted frame with invalid shape: %d payload bytes", len(fr.payload))
			}
			if len(fr.payload) > MaxWireFrameBytes {
				t.Fatalf("accepted frame over MaxWireFrameBytes: %d", len(fr.payload))
			}
			// An accepted frame's payload must re-verify against a freshly
			// computed checksum and decode without panicking.
			sum := crc32.Checksum(fr.payload, wireCRCTable)
			rt := encodeFrame(fr.payload)
			if binary.LittleEndian.Uint32(rt[4:8]) != sum {
				t.Fatal("accepted frame does not re-verify")
			}
			for i := 0; i < fr.Len(); i++ {
				_ = fr.Event(i)
			}
			total += fr.Len()
			if total > len(data) { // each event costs ≥17 input bytes
				t.Fatalf("decoded %d events from %d input bytes", total, len(data))
			}
		}
	})
}

// encodeFrame frames one payload (header only, no magic) for fuzz
// re-verification.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, wireFrameHdrSize)
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, wireCRCTable))
	return append(out, payload...)
}

func BenchmarkWireFrameDecode(b *testing.B) {
	evs := wireTestEvents(4096)
	data := encodeWireStream(b, evs, 512)
	dec := NewFrameDecoder(bytes.NewReader(nil))
	var rd bytes.Reader
	var sink int
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		rd.Reset(data)
		dec.Reset(&rd)
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < fr.Len(); i++ {
				sink += fr.Event(i).Addr.Row
			}
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(evs))/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(b.Elapsed().Seconds()*1e9/(float64(b.N)*float64(len(evs))), "ns/event")
	_ = sink
}

func BenchmarkWireFrameEncode(b *testing.B) {
	evs := wireTestEvents(4096)
	var buf bytes.Buffer
	enc := NewFrameEncoder(&buf, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf.Reset()
		enc.Reset(&buf)
		for _, ev := range evs {
			if err := enc.Add(ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e9/(float64(b.N)*float64(len(evs))), "ns/event")
}
