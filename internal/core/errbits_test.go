package core

import (
	"bytes"
	"testing"

	"cordial/internal/features"
	"cordial/internal/xrand"
)

// TestErrBitsPipeline pins the error-bit opt-in end to end: the flag
// widens the pattern dataset by the error-bit columns, the fitted pipeline
// classifies, and the flag survives a save/load round trip (serving must
// extract the same vector shape the model was trained on).
func TestErrBitsPipeline(t *testing.T) {
	fleet := testFleet(t, 11, 60)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(7), 0.6)
	if err != nil {
		t.Fatal(err)
	}

	ds, err := BuildPatternDataset(train, features.DefaultPatternConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := len(features.PatternFeatureNames()) + len(features.ErrBitFeatureNames())
	if len(ds.Names) != wantCols {
		t.Fatalf("errbits dataset has %d columns, want %d", len(ds.Names), wantCols)
	}

	cfg := DefaultConfig(RandomForest)
	cfg.Params = smallParams()
	cfg.ErrBits = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ClassifyPattern(test[0].Events); err != nil {
		t.Fatalf("classify with errbits: %v", err)
	}
	// Importance only lists features used in splits; the call must accept
	// the widened name table (it errors on a name/width mismatch).
	if imp, err := p.PatternImportance(); err != nil || len(imp) == 0 {
		t.Fatalf("PatternImportance: %d names, err %v", len(imp), err)
	}

	var buf bytes.Buffer
	if err := p.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(DefaultConfig(RandomForest))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}
	if !restored.Config().ErrBits {
		t.Fatal("ErrBits flag lost across save/load")
	}
	want, err := p.ClassifyPattern(test[0].Events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ClassifyPattern(test[0].Events)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored pipeline classifies %v, original %v", got, want)
	}
}
