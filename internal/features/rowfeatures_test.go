package features

import (
	"math"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/mcelog"
)

func TestRowFeatureNamesMatchVectorLength(t *testing.T) {
	vec := RowVector(nil, 100, t0)
	if len(vec) != len(RowFeatureNames()) {
		t.Fatalf("vector %d values, names %d", len(vec), len(RowFeatureNames()))
	}
	for i, v := range vec {
		if v != Missing && v != 0 && i != len(vec)-1 {
			t.Fatalf("empty-history feature %d = %g, want Missing or 0", i, v)
		}
	}
}

func TestRowVectorKnownValues(t *testing.T) {
	names := RowFeatureNames()
	idx := func(name string) int { return featureIndex(t, names, name) }
	events := []mcelog.Event{
		ev(0, 50, ecc.ClassCE),   // other row
		ev(1, 100, ecc.ClassCE),  // target row
		ev(3, 100, ecc.ClassUEO), // target row
		ev(5, 120, ecc.ClassUER), // bank context
		ev(7, 130, ecc.ClassUER),
	}
	now := t0.Add(9 * time.Hour)
	vec := RowVector(events, 100, now)

	if got := vec[idx("row_ce_count")]; got != 1 {
		t.Errorf("row_ce_count = %g", got)
	}
	if got := vec[idx("row_ueo_count")]; got != 1 {
		t.Errorf("row_ueo_count = %g", got)
	}
	if got := vec[idx("row_first_error_age_h")]; math.Abs(got-8) > 1e-9 {
		t.Errorf("row_first_error_age_h = %g", got)
	}
	if got := vec[idx("row_last_error_age_h")]; math.Abs(got-6) > 1e-9 {
		t.Errorf("row_last_error_age_h = %g", got)
	}
	if got := vec[idx("bank_ce_count")]; got != 2 {
		t.Errorf("bank_ce_count = %g", got)
	}
	if got := vec[idx("bank_uer_count")]; got != 2 {
		t.Errorf("bank_uer_count = %g", got)
	}
	if got := vec[idx("bank_distinct_error_rows")]; got != 4 {
		t.Errorf("bank_distinct_error_rows = %g", got)
	}
	if got := vec[idx("bank_distinct_uer_rows")]; got != 2 {
		t.Errorf("bank_distinct_uer_rows = %g", got)
	}
	// Nearest UER to row 100 is 120 → 20.
	if got := vec[idx("dist_to_nearest_bank_uer_row")]; got != 20 {
		t.Errorf("dist_to_nearest_bank_uer_row = %g", got)
	}
	// UER gap: 7h-5h = 2h.
	if got := vec[idx("bank_uer_dt_avg_h")]; math.Abs(got-2) > 1e-9 {
		t.Errorf("bank_uer_dt_avg_h = %g", got)
	}
	if got := vec[idx("row_number")]; got != 100 {
		t.Errorf("row_number = %g", got)
	}
}

func TestRowVectorAllFinite(t *testing.T) {
	events := []mcelog.Event{ev(0, 5, ecc.ClassUER)}
	vec := RowVector(events, 5, t0.Add(time.Hour))
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d = %g", i, v)
		}
	}
}
