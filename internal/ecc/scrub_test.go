package ecc

import (
	"testing"
	"time"
)

var scrubEpoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func at(h int) time.Time { return scrubEpoch.Add(time.Duration(h) * time.Hour) }

func TestFaultValidate(t *testing.T) {
	good := Fault{Bits: []int{3}, Kind: FaultStuck, Onset: at(1)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []Fault{
		{Bits: nil, Kind: FaultStuck, Onset: at(1)},
		{Bits: []int{72}, Kind: FaultStuck, Onset: at(1)},
		{Bits: []int{-1}, Kind: FaultStuck, Onset: at(1)},
		{Bits: []int{1}, Kind: FaultKind(9), Onset: at(1)},
		{Bits: []int{1}, Kind: FaultStuck},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %+v accepted", f)
		}
	}
}

func TestFaultMapReadClean(t *testing.T) {
	var m FaultMap
	if got := m.Read(0, at(1), AccessDemand); got != ClassNone {
		t.Fatalf("clean read = %v", got)
	}
}

func TestFaultMapSingleBitStuckIsCE(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(5, Fault{Bits: []int{10}, Kind: FaultStuck, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	// Before onset: clean.
	if got := m.Read(5, at(0), AccessDemand); got != ClassNone {
		t.Fatalf("pre-onset read = %v", got)
	}
	// After onset: correctable on both access kinds, repeatedly (stuck
	// faults are not cleared by scrubbing).
	for i := 0; i < 3; i++ {
		if got := m.Read(5, at(2+i), AccessPatrolScrub); got != ClassCE {
			t.Fatalf("scrub read %d = %v", i, got)
		}
	}
	if got := m.Read(5, at(9), AccessDemand); got != ClassCE {
		t.Fatalf("demand read = %v", got)
	}
}

func TestFaultMapDoubleBitClassification(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(7, Fault{Bits: []int{1, 2}, Kind: FaultStuck, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(7, at(2), AccessPatrolScrub); got != ClassUEO {
		t.Fatalf("scrub hit = %v, want UEO", got)
	}
	if got := m.Read(7, at(3), AccessDemand); got != ClassUER {
		t.Fatalf("demand hit = %v, want UER", got)
	}
}

func TestScrubRepairsTransientFaults(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(9, Fault{Bits: []int{4}, Kind: FaultTransient, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	// First scrub sees and corrects the flip, rewriting the word.
	if got := m.Read(9, at(2), AccessPatrolScrub); got != ClassCE {
		t.Fatalf("first scrub = %v", got)
	}
	// Subsequent reads are clean: the corruption is gone.
	if got := m.Read(9, at(3), AccessPatrolScrub); got != ClassNone {
		t.Fatalf("second scrub = %v, want clean", got)
	}
	if got := m.Read(9, at(4), AccessDemand); got != ClassNone {
		t.Fatalf("demand after scrub = %v, want clean", got)
	}
}

func TestDemandReadDoesNotRepair(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(9, Fault{Bits: []int{4}, Kind: FaultTransient, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	// Demand reads correct in flight but leave the stored word corrupt.
	if got := m.Read(9, at(2), AccessDemand); got != ClassCE {
		t.Fatalf("demand read = %v", got)
	}
	if got := m.Read(9, at(3), AccessDemand); got != ClassCE {
		t.Fatalf("second demand read = %v, want still CE", got)
	}
}

func TestTransientAccumulationBecomesUncorrectable(t *testing.T) {
	// Two transient single-bit faults on the same word, no scrub in
	// between: the accumulated double-bit corruption is uncorrectable —
	// the CE-accumulation pathway of §II-B.
	var m FaultMap
	if err := m.AddFault(3, Fault{Bits: []int{1}, Kind: FaultTransient, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(3, Fault{Bits: []int{9}, Kind: FaultTransient, Onset: at(5)}); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(3, at(6), AccessDemand); got != ClassUER {
		t.Fatalf("accumulated faults = %v, want UER", got)
	}
}

func TestScrubPreventsAccumulation(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(3, Fault{Bits: []int{1}, Kind: FaultTransient, Onset: at(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(3, Fault{Bits: []int{9}, Kind: FaultTransient, Onset: at(5)}); err != nil {
		t.Fatal(err)
	}
	// A scrub between the two onsets repairs the first flip...
	if got := m.Read(3, at(2), AccessPatrolScrub); got != ClassCE {
		t.Fatalf("scrub = %v", got)
	}
	// ...so the second fault is again a lone correctable bit.
	if got := m.Read(3, at(6), AccessDemand); got != ClassCE {
		t.Fatalf("post-scrub read = %v, want CE", got)
	}
}

func TestScrubberRun(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(1, Fault{Bits: []int{2}, Kind: FaultStuck, Onset: at(0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFault(2, Fault{Bits: []int{3, 7}, Kind: FaultStuck, Onset: at(5)}); err != nil {
		t.Fatal(err)
	}
	s := &Scrubber{Interval: time.Hour, Map: &m}
	obs, err := s.Run(at(0), at(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	var ces, ueos int
	for i, o := range obs {
		if i > 0 && o.Time.Before(obs[i-1].Time) {
			t.Fatal("observations out of time order")
		}
		switch o.Class {
		case ClassCE:
			if o.Word != 1 {
				t.Fatalf("CE on word %d", o.Word)
			}
			ces++
		case ClassUEO:
			if o.Word != 2 {
				t.Fatalf("UEO on word %d", o.Word)
			}
			ueos++
		default:
			t.Fatalf("unexpected class %v", o.Class)
		}
	}
	// Word 1 is CE on all 11 passes; word 2 is UEO on passes from hour 5.
	if ces != 11 {
		t.Errorf("CE count = %d, want 11", ces)
	}
	if ueos != 6 {
		t.Errorf("UEO count = %d, want 6", ueos)
	}
}

func TestScrubberRunErrors(t *testing.T) {
	var m FaultMap
	if _, err := (&Scrubber{Interval: 0, Map: &m}).Run(at(0), at(1)); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := (&Scrubber{Interval: time.Hour}).Run(at(0), at(1)); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := (&Scrubber{Interval: time.Hour, Map: &m}).Run(at(2), at(1)); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestFaultMapRejectsInvalidFault(t *testing.T) {
	var m FaultMap
	if err := m.AddFault(1, Fault{}); err == nil {
		t.Fatal("invalid fault accepted")
	}
}

func TestFaultyWordsSorted(t *testing.T) {
	var m FaultMap
	for _, w := range []uint64{9, 1, 5} {
		if err := m.AddFault(w, Fault{Bits: []int{1}, Kind: FaultStuck, Onset: at(0)}); err != nil {
			t.Fatal(err)
		}
	}
	words := m.FaultyWords()
	if len(words) != 3 || words[0] != 1 || words[1] != 5 || words[2] != 9 {
		t.Fatalf("FaultyWords = %v", words)
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultTransient.String() != "transient" || FaultStuck.String() != "stuck" {
		t.Fatal("fault kind strings wrong")
	}
}
