// Command cordial-serve is the online prediction daemon: it loads (or
// self-trains) a Cordial pipeline, starts the sharded stream engine, and
// serves the ingestion API until interrupted.
//
// Usage:
//
//	cordial-serve -models models.json -addr 127.0.0.1:8080
//	cordial-serve -selftrain -seed 1 -addr 127.0.0.1:0
//
// Endpoints:
//
//	POST /v1/events        JSONL batch ingest (the cordial-gen -format jsonl shape)
//	GET  /v1/actions       mitigation actions emitted so far
//	GET  /v1/banks/{addr}  one bank's session snapshot
//	GET  /healthz          liveness (process up; stays 200 under degradation)
//	GET  /readyz           readiness (503 + JSON reasons when the engine
//	                       should be rotated out of traffic)
//	GET  /statsz           ingest rate, queue depths, latency snapshots (JSON)
//	GET  /metrics          Prometheus text exposition (same instruments as /statsz)
//	GET  /debug/pprof/...  Go profiling endpoints (only with -pprof)
//
// Logs are structured (log/slog) on stdout; -log-format selects text or
// json. On SIGINT/SIGTERM the daemon stops accepting requests, drains
// every in-flight event through the engine, and logs a final stats line.
//
// With -wal-dir the daemon is crash-safe: every accepted event is journaled
// before it is acknowledged (fsync policy via -fsync), snapshots are taken
// periodically (-snapshot-interval) and on graceful shutdown, and a restart
// over the same directory recovers the exact pre-crash session state by
// restoring the newest valid snapshot and replaying the journal suffix.
//
// With -control-plane the daemon joins a cluster (see cordial-control and
// cordial-router): it registers, heartbeats, serves only the banks the
// consistent-hash ring assigns it, and takes part in session handoff when
// membership changes. On graceful shutdown it first asks the control plane
// to rebalance its banks away.
//
// Model lifecycle: with a registry directory (-registry-dir, defaulting to
// <wal-dir>/models when durability is on) the daemon serves versioned model
// artefacts. The first boot installs the -models/-selftrain pipeline as
// version 1; later boots serve whatever version the registry marks active —
// boot flags never silently downgrade a model that online retraining or an
// operator promoted. SIGHUP re-reads the -models file, installs it as a new
// version and swaps it in atomically (new banks bind it immediately;
// existing banks keep the version they started under). With -retrain the
// daemon also watches the live class mix for drift, refits from the
// journal, shadow-scores the candidate and promotes it only if its
// isolation coverage holds up; /v1/models exposes the state and manual
// promote/rollback/retrain controls.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cordial/internal/cluster"
	"cordial/internal/core"
	"cordial/internal/hbm"
	"cordial/internal/lifecycle"
	"cordial/internal/registry"
	"cordial/internal/stream"
	"cordial/internal/trace"
	"cordial/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		modelsPath = flag.String("models", "", "model path from cordial-train")
		selftrain  = flag.Bool("selftrain", false, "train a pipeline on a simulated fleet at startup (demo mode)")
		seed       = flag.Uint64("seed", 1, "selftrain simulation seed")
		trainBanks = flag.Int("train-banks", 120, "selftrain faulty-bank count")
		trees      = flag.Int("trees", 15, "selftrain ensemble size")
		shards     = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "per-shard queue depth (0 = default)")
		policy     = flag.String("policy", "block", "full-queue ingest policy: block or drop")
		walDir     = flag.String("wal-dir", "", "durability directory: journal accepted events, snapshot sessions, recover on boot")
		snapEvery  = flag.Duration("snapshot-interval", 0, "periodic snapshot interval (0 disables; requires -wal-dir)")
		fsync      = flag.String("fsync", "always", "journal fsync policy with -wal-dir: always, interval or never")
		groupWAL   = flag.Bool("group-commit", true, "coalesce concurrent journal appends into shared fsyncs under -fsync=always")
		faultSpec  = flag.String("faultfs", "", "chaos-testing disk faults for the WAL path (sync-fail[=N], write-budget=N, open-fail; comma-separated); starts DISARMED, SIGUSR2 toggles arm/disarm")
		deadLetter = flag.String("dead-letter", "", "append quarantined events (panicked processing) to this JSONL file")
		deadMaxMB  = flag.Int64("dead-letter-max-mb", 0, "rotate the dead-letter file past this many MiB (0 = default 64)")
		deadKeep   = flag.Int("dead-letter-keep", 0, "rotated dead-letter files to keep (0 = default 4, negative keeps none)")
		deadMaxAge = flag.Duration("dead-letter-max-age", 0, "additionally drop rotated dead-letter files older than this (0 = no age pruning)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		pprofOn    = flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
		drainWait  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound on draining in-flight events; logs a warning with the stranded count when it fires")
		cpURL      = flag.String("control-plane", "", "control plane base URL (http://host:port); joins this node to a cluster")
		nodeID     = flag.String("node-id", "", "stable cluster identity (default: the resolved listen address)")
		advertise  = flag.String("advertise", "", "address cluster peers reach this node at (default: the resolved listen address)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "cluster registration refresh interval")
		regDir     = flag.String("registry-dir", "", "versioned model registry directory (default <wal-dir>/models when -wal-dir is set)")
		retrain    = flag.Bool("retrain", false, "watch the live class mix for drift and retrain/shadow/promote online (requires -wal-dir)")
		retrainInt = flag.Duration("retrain-interval", 30*time.Second, "drift-check cadence with -retrain")
		driftP     = flag.Float64("drift-p", 0.01, "chi-square p-value below which the live class mix counts as drifted")
		topology   = flag.String("topology", hbm.ActiveProfile().Name, "topology profile: "+strings.Join(hbm.ProfileNames(), ", "))
	)
	flag.Parse()

	prof, err := hbm.SetActiveProfile(*topology)
	if err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stdout, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stdout, nil)
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	// Validate cheap configuration before the (possibly slow) model load.
	cfg := stream.Config{
		Geometry:   prof.Geometry,
		Shards:     *shards,
		QueueDepth: *queue,
	}
	switch *policy {
	case "block":
		cfg.Policy = stream.IngestBlock
	case "drop":
		cfg.Policy = stream.IngestDrop
	default:
		return fmt.Errorf("unknown ingest policy %q (want block or drop)", *policy)
	}
	if *modelsPath != "" && *selftrain {
		return fmt.Errorf("-models and -selftrain are mutually exclusive")
	}
	if *modelsPath == "" && !*selftrain {
		return fmt.Errorf("need -models <path> or -selftrain")
	}
	var (
		faultFS     *wal.FaultFS
		armedFaults wal.FaultSpec
	)
	if *walDir != "" {
		pol, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		cfg.Durability = stream.DurabilityConfig{Dir: *walDir, Sync: pol, NoGroupCommit: !*groupWAL}
		if *faultSpec != "" {
			// Chaos plumbing: the WAL runs over a FaultFS that boots
			// disarmed (recovery and steady state are unaffected) and flips
			// to the parsed faults on SIGUSR2. The harness schedules the
			// signal; the spec stays fixed for the process lifetime.
			armedFaults, err = wal.ParseFaultSpec(*faultSpec)
			if err != nil {
				return err
			}
			if !armedFaults.Armed() {
				return fmt.Errorf("-faultfs %q arms no faults", *faultSpec)
			}
			faultFS = wal.NewFaultFS(wal.OSFS)
			cfg.Durability.FS = faultFS
		}
	} else if *snapEvery > 0 {
		return fmt.Errorf("-snapshot-interval requires -wal-dir")
	} else if *faultSpec != "" {
		return fmt.Errorf("-faultfs requires -wal-dir (it injects faults into the WAL path)")
	}
	if *regDir == "" && *walDir != "" {
		*regDir = filepath.Join(*walDir, "models")
	}
	if *retrain {
		if *walDir == "" {
			return fmt.Errorf("-retrain requires -wal-dir (the trainer refits from the journal)")
		}
	}
	cfg.DeadLetterPath = *deadLetter
	cfg.DeadLetterRotation = stream.DeadLetterRotation{
		MaxFileBytes: *deadMaxMB << 20,
		MaxFiles:     *deadKeep,
		MaxAge:       *deadMaxAge,
	}
	cfg.Logger = logger

	pipe, err := loadPipeline(logger, *modelsPath, *selftrain, *seed, *trainBanks, *trees)
	if err != nil {
		return err
	}
	logModelMeta(logger, "model loaded", pipe.Meta())

	// With a registry the engine resolves models by version through it;
	// without one it pins everything to the single loaded pipeline.
	var reg *registry.Registry
	if *regDir != "" {
		reg, err = registry.Open(registry.Options{Dir: *regDir, Geometry: prof.Geometry})
		if err != nil {
			return err
		}
		if reg.Len() == 0 {
			meta, err := reg.Install(pipe, "boot")
			if err != nil {
				return err
			}
			if err := reg.Activate(meta.Version); err != nil {
				return err
			}
			logger.Info("model installed in registry", "version", meta.Version, "dir", *regDir)
		} else {
			// The registry's active pointer outranks boot flags: a model
			// promoted by online retraining (or an operator) must survive a
			// restart with stale -models/-selftrain flags.
			logger.Info("registry supersedes boot model",
				"activeVersion", reg.ActiveVersion(), "versions", reg.Len(), "dir", *regDir)
		}
		cfg.Models = reg
	} else {
		cfg.Strategy = &core.CordialStrategy{Pipeline: pipe, Geometry: prof.Geometry}
	}
	engine, err := stream.New(cfg)
	if err != nil {
		return err
	}
	if st := engine.Stats(); st.WALEnabled {
		logger.Info("recovered from durability directory",
			"sessions", st.RecoveredSessions, "events", st.RecoveredEvents,
			"dir", *walDir, "snapshotSeq", st.LastSnapshotSeq)
	}

	// Online retraining: the lifecycle manager watches drift, refits from
	// the journal and promotes through the engine's swap point. Its admin
	// surface rides the ingest API under /v1/models.
	var apiCfg stream.ServerConfig
	var mgr *lifecycle.Manager
	if *retrain {
		mgr, err = lifecycle.New(lifecycle.Config{
			Engine:      engine,
			Registry:    reg,
			Geometry:    prof.Geometry,
			Train:       trainConfig(*trees, *seed),
			Interval:    *retrainInt,
			DriftPValue: *driftP,
			Metrics:     engine.Metrics(),
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		apiCfg.ModelAdmin = lifecycle.AdminFor(mgr)
		logger.Info("online retraining enabled",
			"interval", retrainInt.String(), "driftP", *driftP)
	}
	api := stream.NewServer(engine, apiCfg)

	// Periodic checkpoints bound replay time after a crash.
	var snapStop, snapDone chan struct{}
	if *snapEvery > 0 {
		snapStop, snapDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(snapDone)
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if _, err := engine.Snapshot(); err != nil {
						logger.Error("periodic snapshot failed", "err", err)
					}
				case <-snapStop:
					return
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved-address attribute is load-bearing: with -addr :0 the
	// "addr=" (text) / "addr": (json) field is how test harnesses and
	// wrapper scripts learn the real port.
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"shards", engine.Config().Shards,
		"policy", engine.Config().Policy.String(),
		"pprof", *pprofOn)

	// Cluster mode: the agent owns the node's ring membership and serves
	// the handoff endpoints next to the ingest API.
	var agent *cluster.Agent
	if *cpURL != "" {
		id := *nodeID
		if id == "" {
			id = ln.Addr().String()
		}
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		agent = cluster.NewAgent(cluster.AgentConfig{
			ControlPlane: *cpURL,
			Self:         cluster.Member{ID: id, Addr: adv, WALDir: *walDir},
			Heartbeat:    *heartbeat,
			DrainTimeout: *drainWait,
			Logger:       logger,
		}, engine, api)
		logger.Info("cluster mode", "id", id, "advertise", adv, "controlPlane", *cpURL)
	}

	root := http.Handler(api)
	if agent != nil {
		mux := http.NewServeMux()
		mux.Handle("/cluster/", agent.Handler())
		mux.Handle("/", api)
		root = mux
	}
	if *pprofOn {
		// The pprof handlers are deliberately opt-in: they expose stack
		// traces and heap contents, so they stay off unless an operator
		// asked for them.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", root)
		root = mux
	}
	srv := &http.Server{Handler: root, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The agent registers and heartbeats in the background; it needs the
	// HTTP listener live first (registration may trigger an immediate
	// handoff callback into /cluster/v1/import).
	agentCtx, stopAgent := context.WithCancel(context.Background())
	defer stopAgent()
	if agent != nil {
		go func() {
			if err := agent.Run(agentCtx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Error("cluster agent stopped", "err", err)
			}
		}()
	}

	mgrCtx, stopMgr := context.WithCancel(context.Background())
	defer stopMgr()
	mgrDone := make(chan struct{})
	if mgr != nil {
		go func() {
			defer close(mgrDone)
			mgr.Run(mgrCtx)
		}()
	} else {
		close(mgrDone)
	}

	stopSnapshots := func() {
		if snapStop != nil {
			close(snapStop)
			<-snapDone
			snapStop = nil
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP, syscall.SIGUSR2)
	faultsArmed := false
serve:
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGHUP {
				// Hot model reload: re-read the -models artefact and swap it
				// in through the same path online promotion uses.
				if err := reloadModel(logger, engine, reg, *modelsPath); err != nil {
					logger.Error("model reload failed", "err", err)
				}
				continue
			}
			if s == syscall.SIGUSR2 {
				// Chaos toggle: arm or disarm the -faultfs spec.
				switch {
				case faultFS == nil:
					logger.Warn("SIGUSR2 ignored: no -faultfs configured")
				case faultsArmed:
					faultFS.Disarm()
					faultsArmed = false
					w, sy := faultFS.Faults()
					logger.Info("disk faults disarmed", "spec", armedFaults.String(), "writeFaults", w, "syncFaults", sy)
				default:
					armedFaults.Apply(faultFS)
					faultsArmed = true
					logger.Info("disk faults armed", "spec", armedFaults.String())
				}
				continue
			}
			logger.Info("shutting down", "signal", s.String())
			break serve
		case err := <-errc:
			stopMgr()
			stopSnapshots()
			engine.Close()
			return err
		}
	}

	// Graceful shutdown. In cluster mode, first hand this node's banks to
	// the survivors — the control plane calls back into the still-running
	// HTTP listener to export them — then stop intake, drain and checkpoint.
	if agent != nil {
		if err := agent.Leave(); err != nil {
			logger.Warn("cluster leave failed; banks fail over via takeover instead", "err", err)
		}
		stopAgent()
	}
	// Stop the retrainer before draining so no swap or registry write races
	// the final snapshot.
	stopMgr()
	<-mgrDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown failed", "err", err)
	}
	stopSnapshots()
	// Bounded drain: every accepted event still flows through its session,
	// up to -drain-timeout. Events stranded past the bound are lost from
	// memory (the journal still has them when durability is on).
	if err := engine.Drain(*drainWait); err != nil {
		st := engine.Stats()
		logger.Warn("drain timed out; in-flight events stranded",
			"stranded", st.Ingested-st.Processed,
			"timeout", drainWait.String(), "err", err)
	}
	// With durability on, checkpoint everything processed so far so the next
	// boot restores instead of replaying the whole journal.
	if *walDir != "" {
		if seq, err := engine.Snapshot(); err != nil {
			logger.Error("final snapshot failed", "err", err)
		} else {
			logger.Info("snapshot written", "seq", seq)
		}
	}
	engine.Close()
	api.AwaitDrained()
	st := engine.Stats()
	logger.Info("drained",
		"ingested", st.Ingested, "processed", st.Processed,
		"sessions", st.SessionsLive, "actions", st.ActionsEmitted, "dropped", st.Dropped)
	return nil
}

// trainConfig is the ensemble configuration online retraining refits with.
func trainConfig(trees int, seed uint64) core.Config {
	cfg := core.DefaultConfig(core.RandomForest)
	cfg.Params.Trees = trees
	cfg.Seed = seed
	return cfg
}

// logModelMeta reports a model's provenance (who trained it, on what, when)
// so operators can tell from the boot log which artefact is actually live.
func logModelMeta(logger *slog.Logger, msg string, meta *core.ModelMeta) {
	if meta == nil {
		logger.Info(msg, "meta", "none")
		return
	}
	attrs := []any{
		"events", meta.EventCount,
		"banks", meta.BankCount,
		"trees", meta.Params.Trees,
	}
	if !meta.TrainedAt.IsZero() {
		attrs = append(attrs, "trainedAt", meta.TrainedAt.UTC().Format(time.RFC3339))
	}
	if len(meta.ClassMix) > 0 {
		attrs = append(attrs, "classMix", meta.ClassMix)
	}
	logger.Info(msg, attrs...)
}

// reloadModel (SIGHUP) re-reads the -models artefact, installs it as a new
// registry version and swaps it in: new banks bind it immediately, existing
// banks keep the version they were born under. Same ordering as online
// promotion — journal the engine swap first, then move the registry's
// active pointer.
func reloadModel(logger *slog.Logger, engine *stream.Engine, reg *registry.Registry, modelsPath string) error {
	if modelsPath == "" {
		return fmt.Errorf("reload needs -models (self-trained models have no file to re-read)")
	}
	if reg == nil {
		return fmt.Errorf("reload needs a model registry (-registry-dir or -wal-dir)")
	}
	pipe, err := loadPipeline(logger, modelsPath, false, 0, 0, 0)
	if err != nil {
		return err
	}
	meta, err := reg.Install(pipe, "sighup")
	if err != nil {
		return err
	}
	if _, err := engine.SwapModel(meta.Version); err != nil {
		return err
	}
	if err := reg.Activate(meta.Version); err != nil {
		return fmt.Errorf("engine swapped to %d but registry activation failed (retry via POST /v1/models/promote): %w", meta.Version, err)
	}
	logModelMeta(logger, "model reloaded", meta.Model)
	logger.Info("model swapped", "version", meta.Version, "trigger", "sighup")
	return nil
}

// loadPipeline restores a saved model or trains a small demonstration
// pipeline on a simulated fleet.
func loadPipeline(logger *slog.Logger, modelsPath string, selftrain bool, seed uint64, banks, trees int) (*core.Pipeline, error) {
	switch {
	case modelsPath != "":
		f, err := os.Open(modelsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		pipe, err := core.New(core.DefaultConfig(core.RandomForest))
		if err != nil {
			return nil, err
		}
		if err := pipe.LoadModels(f); err != nil {
			return nil, err
		}
		return pipe, nil
	case selftrain:
		spec := trace.DefaultSpec(hbm.ActiveProfile().Geometry)
		spec.UERBanks = banks
		spec.BenignBanks = 0
		spec.Seed = seed
		fleet, err := trace.Generate(spec)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(core.RandomForest)
		cfg.Params = core.ModelParams{Trees: trees, Depth: 8}
		cfg.Seed = seed
		pipe, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := pipe.Fit(fleet.Faults); err != nil {
			return nil, err
		}
		logger.Info("self-trained",
			"banks", len(fleet.Faults), "seed", seed, "trees", trees)
		return pipe, nil
	default:
		return nil, fmt.Errorf("need -models <path> or -selftrain")
	}
}
