package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestParseTextRoundTrip renders a registry and reads it back: every
// instrument's value must be recoverable from the parsed snapshot.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "events", L("class", "CE")).Add(41)
	r.Counter("events_total", "events", L("class", "UER")).Add(2)
	r.Gauge("queue_depth", "depth").Set(17.5)
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	snap, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}

	if v, ok := snap.Value("events_total", L("class", "CE")); !ok || v != 41 {
		t.Errorf("events_total{class=CE} = %v, %v; want 41, true", v, ok)
	}
	if v, ok := snap.SumByName("events_total"); !ok || v != 43 {
		t.Errorf("SumByName(events_total) = %v, %v; want 43, true", v, ok)
	}
	if v, ok := snap.Value("queue_depth"); !ok || v != 17.5 {
		t.Errorf("queue_depth = %v, %v; want 17.5, true", v, ok)
	}
	if v, ok := snap.Value("latency_seconds_count"); !ok || v != 100 {
		t.Errorf("latency_seconds_count = %v, %v; want 100, true", v, ok)
	}
	// 90% of samples sit in the first bucket, so P50 interpolates inside
	// (0, 0.01] and P99 inside (0.1, 1].
	p50, ok := snap.Quantile("latency_seconds", 0.5)
	if !ok || p50 <= 0 || p50 > 0.01 {
		t.Errorf("P50 = %v, %v; want in (0, 0.01]", p50, ok)
	}
	p99, ok := snap.Quantile("latency_seconds", 0.99)
	if !ok || p99 <= 0.1 || p99 > 1 {
		t.Errorf("P99 = %v, %v; want in (0.1, 1]", p99, ok)
	}
}

// TestParseTextSpecials covers special values, timestamps and escapes.
func TestParseTextSpecials(t *testing.T) {
	const payload = `# HELP x help
# TYPE x gauge
x{path="a\"b\\c",note="line\nbreak"} +Inf
y -Inf 1700000000
z NaN
`
	snap, err := ParseText(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if v, ok := snap.Value("x", L("note", "line\nbreak"), L("path", `a"b\c`)); !ok || !math.IsInf(v, 1) {
		t.Errorf("x = %v, %v; want +Inf, true", v, ok)
	}
	if v, ok := snap.Value("y"); !ok || !math.IsInf(v, -1) {
		t.Errorf("y = %v, %v; want -Inf, true", v, ok)
	}
	if v, ok := snap.Value("z"); !ok || !math.IsNaN(v) {
		t.Errorf("z = %v, %v; want NaN, true", v, ok)
	}
}

// TestParseTextRejectsMalformed: a malformed line fails the whole parse.
func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		`unterminated{a="b 1`,
		"1leading_digit 2",
		"name not_a_number",
	} {
		if _, err := ParseText(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseText(%q): want error, got nil", bad)
		}
	}
}

// TestScrape exercises the HTTP path end to end against a live registry.
func TestScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(7)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.WriteText(w)
	}))
	defer srv.Close()

	snap, err := Scrape(srv.Client(), srv.URL)
	if err != nil {
		t.Fatalf("Scrape: %v", err)
	}
	if v, ok := snap.Value("hits_total"); !ok || v != 7 {
		t.Errorf("hits_total = %v, %v; want 7, true", v, ok)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	if _, err := Scrape(bad.Client(), bad.URL); err == nil {
		t.Error("Scrape of 503 endpoint: want error, got nil")
	}
}
