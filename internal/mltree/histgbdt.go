package mltree

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"cordial/internal/xrand"
)

// HistGBDTConfig configures the LightGBM-style histogram gradient booster.
type HistGBDTConfig struct {
	// Rounds is the number of boosting rounds per class (default 100).
	Rounds int
	// LearningRate is the shrinkage applied to every tree (default 0.1).
	LearningRate float64
	// MaxLeaves bounds leaf-wise growth (default 31).
	MaxLeaves int
	// MaxBins is the histogram resolution per feature (default 64).
	MaxBins int
	// MinSamplesLeaf is the minimum samples per leaf (default 5).
	MinSamplesLeaf int
	// Lambda is the L2 regularisation on leaf values (default 1).
	Lambda float64
	// MinChildWeight is the minimum hessian sum per child (default 1e-3).
	MinChildWeight float64
	// TopRate is the GOSS large-gradient keep fraction (default 0.2).
	// Set TopRate+OtherRate ≥ 1 to disable GOSS.
	TopRate float64
	// OtherRate is the GOSS small-gradient sample fraction (default 0.1).
	OtherRate float64
	// PositiveWeight scales the gradient/hessian of positive samples to
	// counter class imbalance (default 1; like scale_pos_weight).
	PositiveWeight float64
	// EarlyStopRounds stops boosting when the held-out log-loss has not
	// improved for this many rounds (0 disables). A 20% validation split
	// is carved from the training data.
	EarlyStopRounds int
	// Parallelism caps the goroutines fitting one-vs-rest arms and
	// scanning split histograms; <=0 means runtime.GOMAXPROCS(0). Results
	// are identical for any value: arm RNG streams are derived up front
	// and split search reduces deterministically.
	Parallelism int
	// Seed drives GOSS sampling and the early-stop split.
	Seed uint64
}

func (c HistGBDTConfig) withDefaults() HistGBDTConfig {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxLeaves <= 1 {
		c.MaxLeaves = 31
	}
	if c.MaxBins <= 1 {
		c.MaxBins = 64
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 5
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1e-3
	}
	if c.TopRate <= 0 {
		c.TopRate = 0.2
	}
	if c.OtherRate <= 0 {
		c.OtherRate = 0.1
	}
	if c.PositiveWeight <= 0 {
		c.PositiveWeight = 1
	}
	if c.EarlyStopRounds < 0 {
		c.EarlyStopRounds = 0
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// binner maps feature values to histogram bins via per-feature quantile
// boundaries. Upper[f][b] is the inclusive upper value of bin b; the last
// bin is unbounded.
type binner struct {
	Upper [][]float64 `json:"upper"`

	// offset[f] is feature f's start in the flattened histogram arrays;
	// total is the arena size. Training-only, set by newBinner.
	offset []int
	total  int
}

// newBinner computes quantile-spaced bin boundaries from the training data.
func newBinner(features [][]float64, maxBins int) *binner {
	numFeatures := len(features[0])
	b := &binner{Upper: make([][]float64, numFeatures)}
	vals := make([]float64, len(features))
	for f := 0; f < numFeatures; f++ {
		for i, row := range features {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		// Distinct quantile cut points. A cut equal to the feature's
		// maximum would leave the last bin empty (and a constant feature
		// needs no cuts at all), so cuts stay strictly below the max.
		maxVal := vals[len(vals)-1]
		var cuts []float64
		for k := 1; k < maxBins; k++ {
			v := vals[k*(len(vals)-1)/maxBins]
			if v >= maxVal {
				continue
			}
			if len(cuts) == 0 || v > cuts[len(cuts)-1] {
				cuts = append(cuts, v)
			}
		}
		b.Upper[f] = cuts
	}
	b.offset = make([]int, numFeatures)
	for f := 0; f < numFeatures; f++ {
		b.offset[f] = b.total
		b.total += b.numBins(f)
	}
	return b
}

// bin returns the bin index of value v for feature f.
func (b *binner) bin(f int, v float64) int {
	cuts := b.Upper[f]
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// numBins returns the bin count for feature f (len(cuts)+1).
func (b *binner) numBins(f int) int { return len(b.Upper[f]) + 1 }

// threshold returns the split value for "bin ≤ b": the upper boundary of b.
func (b *binner) threshold(f, bin int) float64 { return b.Upper[f][bin] }

// HistGBDT is a LightGBM-style gradient booster: per-feature histogram
// binning, leaf-wise (best-first) tree growth bounded by MaxLeaves, and
// Gradient-based One-Side Sampling (GOSS). Loss and multi-class handling
// match GBDT (logistic, one-vs-rest).
type HistGBDT struct {
	Config   HistGBDTConfig
	classes  []int
	boosters []*booster
}

// NewHistGBDT returns an unfitted histogram booster.
func NewHistGBDT(cfg HistGBDTConfig) *HistGBDT {
	return &HistGBDT{Config: cfg.withDefaults()}
}

var _ Classifier = (*HistGBDT)(nil)

// Classes returns the labels seen during Fit.
func (h *HistGBDT) Classes() []int { return h.classes }

// NumTrees returns the total tree count across all arms.
func (h *HistGBDT) NumTrees() int {
	n := 0
	for _, b := range h.boosters {
		n += len(b.Trees)
	}
	return n
}

// Fit trains one boosting chain per class (a single chain for binary).
func (h *HistGBDT) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	h.classes = ds.Classes()
	if len(h.classes) < 2 {
		return fmt.Errorf("mltree: HistGBDT needs ≥2 classes, got %d", len(h.classes))
	}
	rng := xrand.New(h.Config.Seed)
	bins := newBinner(ds.Features, h.Config.MaxBins)

	// Pre-bin the whole matrix once, rows in parallel (each row is
	// independent, so worker count cannot change the result).
	binned := make([][]uint16, ds.NumSamples())
	runWorkers(ds.NumSamples(), h.Config.Parallelism, func(_, i int) {
		row := ds.Features[i]
		br := make([]uint16, len(row))
		for f, v := range row {
			br[f] = uint16(bins.bin(f, v))
		}
		binned[i] = br
	})

	arms := len(h.classes)
	if arms == 2 {
		arms = 1
	}
	// Derive every arm's RNG up front, in arm order, so concurrent arm
	// fitting consumes the exact streams the serial loop did.
	rngs := make([]*xrand.RNG, arms)
	for a := range rngs {
		rngs[a] = rng.Split()
	}
	h.boosters = make([]*booster, arms)
	errs := make([]error, arms)
	runWorkers(arms, h.Config.Parallelism, func(_, a int) {
		positive := h.classes[a]
		if len(h.classes) == 2 {
			positive = h.classes[1]
		}
		y := make([]float64, ds.NumSamples())
		for i, l := range ds.Labels {
			if l == positive {
				y[i] = 1
			}
		}
		b, err := h.fitBinary(ds, binned, bins, y, rngs[a])
		if err != nil {
			errs[a] = fmt.Errorf("mltree: HistGBDT arm %d: %w", a, err)
			return
		}
		b.compile()
		h.boosters[a] = b
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *HistGBDT) fitBinary(ds *Dataset, binned [][]uint16, bins *binner, y []float64, rng *xrand.RNG) (*booster, error) {
	cfg := h.Config
	n := ds.NumSamples()

	// Optional early-stopping validation split.
	trainIdx := make([]int, 0, n)
	var valIdx []int
	if cfg.EarlyStopRounds > 0 && n >= 20 {
		perm := rng.Perm(n)
		cut := n / 5
		valIdx = perm[:cut]
		trainIdx = append(trainIdx, perm[cut:]...)
	} else {
		for i := 0; i < n; i++ {
			trainIdx = append(trainIdx, i)
		}
	}

	pos := 0.0
	for _, i := range trainIdx {
		pos += y[i]
	}
	p0 := (pos + 1) / (float64(len(trainIdx)) + 2)
	b := &booster{Bias: math.Log(p0 / (1 - p0)), LR: cfg.LearningRate}

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = b.Bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	bestLoss := math.Inf(1)
	bestLen := 0
	sinceBest := 0

	for round := 0; round < cfg.Rounds; round++ {
		for _, i := range trainIdx {
			p := sigmoid(margin[i])
			w := 1.0
			if y[i] == 1 {
				w = cfg.PositiveWeight
			}
			grad[i] = w * (p - y[i])
			hess[i] = w * p * (1 - p)
		}
		samples, scale := h.goss(grad, trainIdx, rng)
		g := &histGrower{
			cfg:    cfg,
			bins:   bins,
			binned: binned,
			grad:   grad,
			hess:   hess,
			scale:  scale,
		}
		root := g.grow(samples)
		b.Trees = append(b.Trees, root)
		// Update margins by navigating the pre-binned matrix: split bins
		// were chosen so that binned[i][f] <= bin ⟺ raw value <= threshold,
		// so this is bit-identical to navigating the raw features — without
		// touching the float matrix.
		for i := 0; i < n; i++ {
			margin[i] += cfg.LearningRate * root.navigateBinned(binned[i]).Value
		}

		if len(valIdx) > 0 {
			loss := 0.0
			for _, i := range valIdx {
				loss += logLoss(y[i], sigmoid(margin[i]))
			}
			loss /= float64(len(valIdx))
			if loss < bestLoss-1e-9 {
				bestLoss = loss
				bestLen = len(b.Trees)
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.EarlyStopRounds {
					b.Trees = b.Trees[:bestLen]
					break
				}
			}
		}
	}
	return b, nil
}

// goss performs Gradient-based One-Side Sampling over the training indices:
// keep the TopRate fraction with the largest |gradient|, sample OtherRate of
// the rest, and return a per-sample weight multiplier that compensates the
// downsampling.
func (h *HistGBDT) goss(grad []float64, trainIdx []int, rng *xrand.RNG) (samples []int, scale []float64) {
	n := len(trainIdx)
	cfg := h.Config
	scale = make([]float64, len(grad))
	if cfg.TopRate+cfg.OtherRate >= 1 {
		for _, i := range trainIdx {
			scale[i] = 1
		}
		return trainIdx, scale
	}
	order := append([]int(nil), trainIdx...)
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(grad[order[a]]) > math.Abs(grad[order[b]])
	})
	topN := int(cfg.TopRate * float64(n))
	if topN < 1 {
		topN = 1
	}
	restN := int(cfg.OtherRate * float64(n))
	if restN < 1 {
		restN = 1
	}
	if topN+restN > n {
		restN = n - topN
	}
	samples = append(samples, order[:topN]...)
	for _, i := range samples {
		scale[i] = 1
	}
	rest := order[topN:]
	amplify := (1 - cfg.TopRate) / cfg.OtherRate
	if len(rest) > 0 && restN > 0 {
		for _, k := range rng.SampleInts(len(rest), min(restN, len(rest))) {
			i := rest[k]
			samples = append(samples, i)
			scale[i] = amplify
		}
	}
	return samples, scale
}

// histGrower grows one tree leaf-wise over binned features.
type histGrower struct {
	cfg    HistGBDTConfig
	bins   *binner
	binned [][]uint16
	grad   []float64
	hess   []float64
	scale  []float64
}

// leafHist is a leaf's per-feature histograms, flattened into one arena
// indexed by binner.offset — gradient sum, hessian sum and sample count per
// (feature, bin).
type leafHist struct {
	g, h []float64
	n    []int
}

func newLeafHist(total int) *leafHist {
	return &leafHist{
		g: make([]float64, total),
		h: make([]float64, total),
		n: make([]int, total),
	}
}

// leafState tracks a grown leaf, its histograms, and its best candidate
// split.
type leafState struct {
	node    *treeNode
	samples []int
	sumG    float64
	sumH    float64
	hist    *leafHist

	bestGain float64
	bestFeat int
	bestBin  int
}

func (g *histGrower) grow(samples []int) *treeNode {
	root := &treeNode{}
	rootLeaf := g.newLeaf(root, samples)
	leaves := []*leafState{rootLeaf}

	for len(leaves) < g.cfg.MaxLeaves {
		// Pick the splittable leaf with the largest gain.
		var best *leafState
		for _, l := range leaves {
			if l.bestGain > 0 && (best == nil || l.bestGain > best.bestGain) {
				best = l
			}
		}
		if best == nil {
			break
		}
		left, right := g.split(best)
		if left == nil {
			best.bestGain = 0 // split fell through; stop considering it
			continue
		}
		// Replace the split leaf with its children.
		for i, l := range leaves {
			if l == best {
				leaves[i] = left
				leaves = append(leaves, right)
				break
			}
		}
	}
	// Finalise leaf values.
	for _, l := range leaves {
		l.node.Left, l.node.Right = nil, nil
		l.node.Value = -l.sumG / (l.sumH + g.cfg.Lambda)
		l.hist = nil
	}
	return root
}

// newLeaf materialises a leaf whose histograms are built directly from its
// samples (the root, and the smaller child of every split).
func (g *histGrower) newLeaf(node *treeNode, samples []int) *leafState {
	l := &leafState{node: node, samples: samples}
	for _, i := range samples {
		l.sumG += g.grad[i] * g.scale[i]
		l.sumH += g.hess[i] * g.scale[i]
	}
	l.hist = g.buildHist(samples)
	g.findBestSplit(l)
	return l
}

// derivedLeaf materialises the larger child of a split by histogram
// subtraction: its histograms and gradient/hessian totals are the parent's
// minus its sibling's, skipping a pass over the (larger) sample half.
// The subtraction reuses the parent's arena, which the parent no longer
// needs.
func (g *histGrower) derivedLeaf(node *treeNode, samples []int, parent, sibling *leafState) *leafState {
	hist := parent.hist
	for k := range hist.g {
		hist.g[k] -= sibling.hist.g[k]
		hist.h[k] -= sibling.hist.h[k]
		hist.n[k] -= sibling.hist.n[k]
	}
	l := &leafState{
		node:    node,
		samples: samples,
		sumG:    parent.sumG - sibling.sumG,
		sumH:    parent.sumH - sibling.sumH,
		hist:    hist,
	}
	g.findBestSplit(l)
	return l
}

// buildHist accumulates a leaf's histograms in one row-major pass over its
// samples: per (feature, bin) cell the samples contribute in index order,
// exactly as a per-feature scan would.
func (g *histGrower) buildHist(samples []int) *leafHist {
	h := newLeafHist(g.bins.total)
	offset := g.bins.offset
	for _, i := range samples {
		w := g.scale[i]
		gw, hw := g.grad[i]*w, g.hess[i]*w
		for f, b := range g.binned[i] {
			k := offset[f] + int(b)
			h.g[k] += gw
			h.h[k] += hw
			h.n[k]++
		}
	}
	return h
}

// findBestSplit scans the leaf's stored histograms for the best bin split,
// features fanned out over the shared worker pool and reduced in feature
// order with a strict greater-than — the serial scan's winner, bit for bit.
func (g *histGrower) findBestSplit(l *leafState) {
	l.bestGain = 0
	if len(l.samples) < 2*g.cfg.MinSamplesLeaf {
		return
	}
	numFeatures := len(g.binned[0])
	cands := make([]splitCand, numFeatures)
	want := 1
	if len(l.samples)*numFeatures >= minParallelSplitWork {
		want = numFeatures
	}
	runWorkers(numFeatures, want, func(_, f int) {
		cands[f] = g.evalFeature(l, f)
	})
	for _, c := range cands {
		if c.ok && c.gain > l.bestGain {
			l.bestGain = c.gain
			l.bestFeat = c.feat
			l.bestBin = c.bin
		}
	}
}

// evalFeature scans one feature's histogram slice for its best bin split.
func (g *histGrower) evalFeature(l *leafState, f int) splitCand {
	nb := g.bins.numBins(f)
	if nb < 2 {
		return splitCand{}
	}
	off := g.bins.offset[f]
	histG := l.hist.g[off : off+nb]
	histH := l.hist.h[off : off+nb]
	histN := l.hist.n[off : off+nb]
	score := func(gs, hs float64) float64 { return gs * gs / (hs + g.cfg.Lambda) }
	parent := score(l.sumG, l.sumH)
	best := splitCand{feat: f}
	var gl, hl float64
	var nl int
	for b := 0; b < nb-1; b++ {
		gl += histG[b]
		hl += histH[b]
		nl += histN[b]
		if nl < g.cfg.MinSamplesLeaf || len(l.samples)-nl < g.cfg.MinSamplesLeaf {
			continue
		}
		gr, hr := l.sumG-gl, l.sumH-hl
		if hl < g.cfg.MinChildWeight || hr < g.cfg.MinChildWeight {
			continue
		}
		gain := 0.5 * (score(gl, hl) + score(gr, hr) - parent)
		if gain > best.gain {
			best.gain = gain
			best.bin = b
			best.ok = true
		}
	}
	return best
}

// split applies a leaf's best split, converting it into an internal node and
// returning the two child leaves. It returns nil children when the split
// degenerates (e.g. all samples on one side).
func (g *histGrower) split(l *leafState) (left, right *leafState) {
	var ls, rs []int
	for _, i := range l.samples {
		if int(g.binned[i][l.bestFeat]) <= l.bestBin {
			ls = append(ls, i)
		} else {
			rs = append(rs, i)
		}
	}
	if len(ls) == 0 || len(rs) == 0 {
		return nil, nil
	}
	l.node.Feature = l.bestFeat
	l.node.Threshold = g.bins.threshold(l.bestFeat, l.bestBin)
	l.node.bin = l.bestBin
	l.node.Left = &treeNode{}
	l.node.Right = &treeNode{}
	// Histogram subtraction: build the smaller child from its samples,
	// derive the larger as parent − smaller.
	if len(ls) <= len(rs) {
		left = g.newLeaf(l.node.Left, ls)
		right = g.derivedLeaf(l.node.Right, rs, l, left)
	} else {
		right = g.newLeaf(l.node.Right, rs)
		left = g.derivedLeaf(l.node.Left, ls, l, right)
	}
	l.hist = nil
	return left, right
}

// PredictProba returns class probabilities (see GBDT.PredictProba).
func (h *HistGBDT) PredictProba(x []float64) []float64 {
	out := make([]float64, len(h.classes))
	if len(h.boosters) == 0 {
		return out
	}
	if len(h.classes) == 2 {
		p := sigmoid(h.boosters[0].raw(x))
		out[0] = 1 - p
		out[1] = p
		return out
	}
	total := 0.0
	for a, b := range h.boosters {
		p := sigmoid(b.raw(x))
		out[a] = p
		total += p
	}
	if total > 0 {
		for a := range out {
			out[a] /= total
		}
	} else {
		for a := range out {
			out[a] = 1 / float64(len(out))
		}
	}
	return out
}

// PredictBatch predicts every row of X, in parallel across rows; each row's
// result is identical to PredictProba on that row.
func (h *HistGBDT) PredictBatch(X [][]float64) [][]float64 {
	return predictBatch(X, h.Config.Parallelism, h.PredictProba)
}
