// Package xrand provides a deterministic pseudo-random number generator and
// the distribution helpers the Cordial simulators need.
//
// The generator is a PCG-XSH-RR 64/32 combined into a 64-bit output stream
// (two 32-bit draws per 64-bit value). Unlike math/rand, its output is stable
// across Go releases, so every experiment in this repository is exactly
// reproducible from a single seed. The zero value is not usable; construct
// generators with New.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
	inc   uint64
	// Cached second normal variate from the Box-Muller transform.
	hasGauss bool
	gauss    float64
}

const pcgMultiplier = 6364136223846793005

// New returns an RNG seeded with seed. Two RNGs built from the same seed
// produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = splitmix64(seed)
	r.next32()
	return r
}

// Split derives a new, statistically independent RNG from r. The derived
// stream depends on r's current position, so calling Split at different
// points yields different children. Use it to hand each simulated component
// its own generator without sharing state across goroutines.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next32 advances the PCG state and returns 32 output bits.
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next32())<<32 | uint64(r.next32())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate). It
// panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp called with rate <= 0")
	}
	return r.ExpFloat64() / rate
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's method; for large means a normal approximation with
// continuity correction, which is accurate enough for workload synthesis.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
}

// Zipf returns a value in [1, n] following a Zipf distribution with exponent
// s > 0, drawn by inversion over the precomputed harmonic weights. For the
// simulator's modest n this is fast enough and allocation-free after the
// first call with a given n via ZipfGen.
func (r *RNG) Zipf(n int, s float64) int {
	g := NewZipf(n, s)
	return g.Draw(r)
}

// Zipf is a reusable Zipf(n, s) sampler with precomputed cumulative weights.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf sampler over [1, n] with exponent s. It panics if
// n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf called with s <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Draw samples a value in [1, len(cum)] from the Zipf distribution.
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero. It panics
// if the weights sum to zero or the slice is empty.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: WeightedChoice called with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedChoice called with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("xrand: unreachable")
}

// SampleInts returns k distinct integers drawn uniformly from [0, n) in
// random order. It panics if k > n or k < 0.
func (r *RNG) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleInts called with k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n, use a set-based sampler; otherwise shuffle.
	if k*4 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}
