// Package lifecycle closes the online retraining loop: it watches the live
// class mix for drift away from the active model's training distribution,
// refits a candidate pipeline from the engine's own journal (self-labelled,
// no ground truth needed), installs it in the registry, shadow-scores it
// against live traffic, and promotes it through the engine's atomic swap
// point only if its isolation coverage holds up against the incumbent's.
//
// The manager is deliberately conservative: every stage can decline (not
// enough classifications, not enough labelled banks, shadow ICR regressed)
// and the incumbent keeps serving untouched. A failed or abandoned
// candidate stays installed in the registry — an operator can still promote
// it manually through the admin API.
package lifecycle

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"cordial/internal/core"
	"cordial/internal/faultsim"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/obs"
	"cordial/internal/registry"
	"cordial/internal/stats"
	"cordial/internal/stream"
)

// Config configures a Manager. Engine and Registry are required.
type Config struct {
	Engine   *stream.Engine
	Registry *registry.Registry
	// Geometry is stamped into retrained models' metadata.
	Geometry hbm.Geometry
	// Train is the pipeline configuration candidates are fitted with.
	// Zero-valued fields default via core.New.
	Train core.Config

	// Interval is the drift-check (and shadow-judgement) cadence.
	// Default 30s.
	Interval time.Duration
	// DriftPValue triggers a retrain when the chi-square test of the
	// recent class mix against the active model's training mix comes in
	// below it. 0 disables automatic retraining (manual retrains and
	// promotions still work); cordial-serve's -drift-p defaults to 0.01.
	DriftPValue float64
	// DriftSample is how many recent classifications the drift test uses.
	// Default 40.
	DriftSample int
	// MinBanks is the minimum self-labelled banks needed to fit a
	// candidate. Default 20.
	MinBanks int
	// Cooldown suppresses a new drift-triggered retrain for this long
	// after the previous retrain concluded (promoted or rolled back),
	// preventing retrain storms while the live mix settles. Default
	// 4*Interval.
	Cooldown time.Duration

	// ShadowMinEvents is how much traffic the candidate must score before
	// the promotion decision. Default 200.
	ShadowMinEvents uint64
	// ShadowTimeout abandons (rolls back) a candidate that has not
	// reached ShadowMinEvents in this long. Default 20*Interval.
	ShadowTimeout time.Duration
	// ICRMargin is how far the candidate's shadow ICR may fall below the
	// primary's and still be promoted; slack for small-sample noise.
	// Default 0.02.
	ICRMargin float64

	Metrics *obs.Registry
	Logger  *slog.Logger
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Status is a point-in-time picture of the lifecycle loop, reported by
// /statsz and the admin API.
type Status struct {
	// State is "idle" or "shadowing".
	State string `json:"state"`
	// ActiveVersion mirrors the engine's swap point.
	ActiveVersion uint64 `json:"activeVersion"`
	// CandidateVersion is the version under shadow evaluation (0 when idle).
	CandidateVersion uint64 `json:"candidateVersion,omitempty"`
	// LastDriftP is the most recent drift-test p-value (1 before any test).
	LastDriftP float64 `json:"lastDriftP"`
	// LastDriftAt is when drift last triggered a retrain.
	LastDriftAt time.Time `json:"lastDriftAt,omitempty"`
	// Retrains, Promotions and Rollbacks count concluded stages.
	Retrains   uint64 `json:"retrains"`
	Promotions uint64 `json:"promotions"`
	Rollbacks  uint64 `json:"rollbacks"`
	// LastError is the most recent stage failure (sticky until the next
	// success).
	LastError string `json:"lastError,omitempty"`
	// Shadow is the live shadow-evaluation snapshot.
	Shadow stream.ShadowStats `json:"shadow"`
}

// Manager runs the drift→retrain→shadow→promote loop.
type Manager struct {
	cfg Config

	mu         sync.Mutex
	candidate  uint64 // version under shadow evaluation; 0 = idle
	shadowFrom time.Time
	lastDriftP float64
	lastDrift  time.Time
	lastDone   time.Time // when the last retrain concluded (cooldown anchor)
	retrains   uint64
	promotions uint64
	rollbacks  uint64
	lastErr    string

	driftScore *obs.Gauge
	retrainCt  *obs.Counter
	trainDur   *obs.Histogram
	promoteCt  *obs.Counter
	rollbackCt *obs.Counter
}

// New validates the configuration and returns a manager. Run starts the
// loop; the manager's methods are safe to call whether or not Run is
// running (the admin API calls them directly).
func New(cfg Config) (*Manager, error) {
	if cfg.Engine == nil || cfg.Registry == nil {
		return nil, fmt.Errorf("lifecycle: Engine and Registry are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.DriftSample <= 0 {
		cfg.DriftSample = 40
	}
	if cfg.MinBanks <= 0 {
		cfg.MinBanks = 20
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 4 * cfg.Interval
	}
	if cfg.ShadowMinEvents == 0 {
		cfg.ShadowMinEvents = 200
	}
	if cfg.ShadowTimeout <= 0 {
		cfg.ShadowTimeout = 20 * cfg.Interval
	}
	if cfg.ICRMargin == 0 {
		cfg.ICRMargin = 0.02
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Manager{cfg: cfg, lastDriftP: 1}
	if reg := cfg.Metrics; reg != nil {
		m.driftScore = reg.Gauge("cordial_drift_score",
			"p-value of the most recent class-mix drift test (1 before any test).")
		m.driftScore.Set(1)
		m.retrainCt = reg.Counter("cordial_retrains_total",
			"Candidate pipelines fitted from the journal.")
		m.trainDur = reg.Histogram("cordial_train_seconds",
			"Wall time of one candidate fit (export, label, train).", nil)
		m.promoteCt = reg.Counter("cordial_promotions_total",
			"Candidates promoted to the active model (including manual promotions).")
		m.rollbackCt = reg.Counter("cordial_rollbacks_total",
			"Candidates abandoned after shadow evaluation, plus manual rollbacks.")
	}
	return m, nil
}

// Run drives the loop until ctx is cancelled.
func (m *Manager) Run(ctx context.Context) {
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			m.Tick()
		}
	}
}

// Tick runs one iteration of the loop: judge a running shadow evaluation,
// or check for drift and maybe start one. Exported so tests (and the
// SIGHUP-style admin path) can drive the loop without wall-clock waits.
func (m *Manager) Tick() {
	m.mu.Lock()
	candidate := m.candidate
	m.mu.Unlock()
	if candidate != 0 {
		m.judge(candidate)
		return
	}
	if p, drifted := m.driftCheck(); drifted {
		m.cfg.Logger.Info("class-mix drift detected", "p", p,
			"threshold", m.cfg.DriftPValue)
		if err := m.Retrain("drift"); err != nil {
			m.fail("retrain", err)
		}
	}
}

// driftCheck chi-square-tests the engine's recent classification mix
// against the active model's training mix. Returns the p-value and whether
// it crossed the trigger threshold.
func (m *Manager) driftCheck() (float64, bool) {
	if m.cfg.DriftPValue <= 0 {
		return 1, false
	}
	m.mu.Lock()
	inCooldown := !m.lastDone.IsZero() && m.cfg.Now().Sub(m.lastDone) < m.cfg.Cooldown
	m.mu.Unlock()
	recent, n := m.cfg.Engine.RecentClassMix(m.cfg.DriftSample)
	if n < m.cfg.DriftSample {
		return 1, false
	}
	trainMix := m.activeClassMix()
	if len(trainMix) == 0 {
		return 1, false
	}
	table := make([][]float64, 2)
	table[0] = make([]float64, len(faultsim.AllClasses))
	table[1] = make([]float64, len(faultsim.AllClasses))
	for i, class := range faultsim.AllClasses {
		table[0][i] = float64(trainMix[class])
		table[1][i] = float64(recent[class])
	}
	stat, df, err := stats.ChiSquareContingency(table)
	if err != nil {
		return 1, false
	}
	p, err := stats.ChiSquarePValue(stat, df)
	if err != nil {
		return 1, false
	}
	m.mu.Lock()
	m.lastDriftP = p
	m.mu.Unlock()
	if m.driftScore != nil {
		m.driftScore.Set(p)
	}
	return p, p < m.cfg.DriftPValue && !inCooldown
}

// activeClassMix is the training class distribution of the model new
// sessions currently bind, from its registry metadata.
func (m *Manager) activeClassMix() map[faultsim.Class]int {
	version := m.cfg.Engine.ActiveModelVersion()
	meta, ok := m.cfg.Registry.MetaOf(version)
	if !ok || meta.Model == nil {
		return nil
	}
	return meta.Model.ClassCounts()
}

// Retrain exports the journal, self-labels it, fits a candidate, installs
// it and starts its shadow evaluation. Called by the drift trigger and by
// the admin/SIGHUP path (with their own trigger tags).
func (m *Manager) Retrain(trigger string) error {
	m.mu.Lock()
	if m.candidate != 0 {
		m.mu.Unlock()
		return fmt.Errorf("lifecycle: candidate %d already under evaluation", m.candidate)
	}
	m.mu.Unlock()

	t0 := time.Now()
	banks, err := m.labelledBanks()
	if err != nil {
		return err
	}
	if len(banks) < m.cfg.MinBanks {
		return fmt.Errorf("lifecycle: only %d labelled banks in the journal, need %d",
			len(banks), m.cfg.MinBanks)
	}
	pipe, err := core.New(m.cfg.Train)
	if err != nil {
		return err
	}
	if err := pipe.Fit(banks); err != nil {
		return fmt.Errorf("lifecycle: fitting candidate: %w", err)
	}
	if meta := pipe.Meta(); meta != nil {
		meta.TrainedAt = m.cfg.Now().UTC()
		meta.Geometry = m.cfg.Geometry
	}
	meta, err := m.cfg.Registry.Install(pipe, trigger)
	if err != nil {
		return err
	}
	if m.retrainCt != nil {
		m.retrainCt.Inc()
	}
	if m.trainDur != nil {
		m.trainDur.Observe(time.Since(t0).Seconds())
	}
	if err := m.cfg.Engine.StartShadow(meta.Version); err != nil {
		return fmt.Errorf("lifecycle: starting shadow for version %d: %w", meta.Version, err)
	}
	m.mu.Lock()
	m.candidate = meta.Version
	m.shadowFrom = m.cfg.Now()
	m.lastDrift = m.shadowFrom
	m.retrains++
	m.lastErr = ""
	m.mu.Unlock()
	m.cfg.Logger.Info("candidate installed, shadow evaluation started",
		"version", meta.Version, "trigger", trigger, "banks", len(banks),
		"trainSeconds", time.Since(t0).Seconds())
	return nil
}

// labelledBanks replays the engine's journal into per-bank event logs and
// self-labels every bank that has UERs.
func (m *Manager) labelledBanks() ([]*faultsim.BankFault, error) {
	events, err := m.cfg.Engine.ExportEvents(0, 0)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: exporting journal: %w", err)
	}
	byBank := make(map[uint64][]mcelog.Event)
	order := make([]uint64, 0)
	for _, ev := range events {
		key := ev.Addr.BankKey()
		if _, seen := byBank[key]; !seen {
			order = append(order, key)
		}
		byBank[key] = append(byBank[key], ev)
	}
	banks := make([]*faultsim.BankFault, 0, len(order))
	for _, key := range order {
		evs := byBank[key]
		// The journal interleaves shards, so cross-bank order is arrival
		// order; within a bank, re-sort by timestamp for the labeller.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		bf, err := faultsim.ObservedFault(m.cfg.Geometry, hbm.BankOf(evs[0].Addr), evs)
		if err != nil {
			continue // benign so far: nothing to label
		}
		banks = append(banks, bf)
	}
	return banks, nil
}

// judge concludes (or keeps waiting on) the running shadow evaluation.
func (m *Manager) judge(candidate uint64) {
	ss := m.cfg.Engine.ShadowStats()
	if !ss.Active || ss.Version != candidate {
		// Someone stopped or replaced the evaluation under us (manual
		// promotion does this); fold our state.
		m.mu.Lock()
		if m.candidate == candidate {
			m.candidate = 0
			m.lastDone = m.cfg.Now()
		}
		m.mu.Unlock()
		return
	}
	elapsed := m.cfg.Now().Sub(m.shadowStart())
	if ss.Events < m.cfg.ShadowMinEvents {
		if elapsed < m.cfg.ShadowTimeout {
			return // keep scoring
		}
		m.cfg.Logger.Warn("shadow evaluation timed out short of traffic",
			"version", candidate, "events", ss.Events, "need", m.cfg.ShadowMinEvents)
		m.concludeRollback(candidate, "timeout")
		return
	}
	primary, shadow := ss.PrimaryICR.Rate(), ss.ShadowICR.Rate()
	if ss.CandidatePanics > 0 || shadow < primary-m.cfg.ICRMargin {
		m.cfg.Logger.Info("candidate rejected by shadow evaluation",
			"version", candidate, "primaryICR", primary, "shadowICR", shadow,
			"panics", ss.CandidatePanics, "events", ss.Events)
		m.concludeRollback(candidate, "icr-regressed")
		return
	}
	if err := m.Promote(candidate); err != nil {
		m.fail("promote", err)
	}
}

func (m *Manager) shadowStart() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shadowFrom
}

// Promote makes a version the active model: journaled engine swap first
// (so the swap's position in event order is durable), then the registry
// pointer flip (so a restart boots the same version), then shadow teardown
// and artefact pruning. Version 0 promotes the current candidate. Admin
// promotion of an arbitrary installed version uses the same path.
func (m *Manager) Promote(version uint64) error {
	m.mu.Lock()
	candidate := m.candidate
	m.mu.Unlock()
	if version == 0 {
		if candidate == 0 {
			return fmt.Errorf("lifecycle: no candidate to promote")
		}
		version = candidate
	}
	if _, err := m.cfg.Engine.SwapModel(version); err != nil {
		return err
	}
	if err := m.cfg.Registry.Activate(version); err != nil {
		// The engine already swapped; a restart would boot the old
		// version. Surface loudly — the operator must retry the activate.
		return fmt.Errorf("lifecycle: engine swapped to %d but registry activation failed: %w", version, err)
	}
	var final stream.ShadowStats
	if version == candidate && candidate != 0 {
		final = m.cfg.Engine.StopShadow()
	}
	m.mu.Lock()
	if m.candidate == candidate {
		m.candidate = 0
	}
	m.lastDone = m.cfg.Now()
	m.promotions++
	m.lastErr = ""
	m.mu.Unlock()
	if m.promoteCt != nil {
		m.promoteCt.Inc()
	}
	if removed, err := m.cfg.Registry.Prune(m.cfg.Engine.PinnedVersionFloor()); err != nil {
		m.cfg.Logger.Warn("artefact prune failed", "err", err)
	} else if removed > 0 {
		m.cfg.Logger.Info("artefacts pruned", "removed", removed)
	}
	m.cfg.Logger.Info("model promoted", "version", version,
		"shadowEvents", final.Events, "shadowICR", final.ShadowICR.Rate(),
		"primaryICR", final.PrimaryICR.Rate())
	return nil
}

// Rollback abandons the current candidate (if one is shadowing) or, when
// idle, re-activates the highest installed version below the active one —
// the admin "undo the last promotion" lever. The engine swap and registry
// pointer move together, same as promotion.
func (m *Manager) Rollback() error {
	m.mu.Lock()
	candidate := m.candidate
	m.mu.Unlock()
	if candidate != 0 {
		m.concludeRollback(candidate, "manual")
		return nil
	}
	active := m.cfg.Engine.ActiveModelVersion()
	var prev uint64
	for _, meta := range m.cfg.Registry.Versions() {
		if meta.Version < active && meta.Version > prev {
			prev = meta.Version
		}
	}
	if prev == 0 {
		return fmt.Errorf("lifecycle: no version below %d to roll back to", active)
	}
	if _, err := m.cfg.Engine.SwapModel(prev); err != nil {
		return err
	}
	if err := m.cfg.Registry.Activate(prev); err != nil {
		return fmt.Errorf("lifecycle: engine swapped to %d but registry activation failed: %w", prev, err)
	}
	m.mu.Lock()
	m.rollbacks++
	m.lastDone = m.cfg.Now()
	m.lastErr = ""
	m.mu.Unlock()
	if m.rollbackCt != nil {
		m.rollbackCt.Inc()
	}
	m.cfg.Logger.Info("model rolled back", "from", active, "to", prev)
	return nil
}

// concludeRollback tears down a candidate's shadow evaluation without
// promoting it. The artefact stays installed for manual inspection or
// promotion.
func (m *Manager) concludeRollback(candidate uint64, reason string) {
	final := m.cfg.Engine.StopShadow()
	m.mu.Lock()
	if m.candidate == candidate {
		m.candidate = 0
	}
	m.lastDone = m.cfg.Now()
	m.rollbacks++
	m.mu.Unlock()
	if m.rollbackCt != nil {
		m.rollbackCt.Inc()
	}
	m.cfg.Logger.Info("candidate rolled back", "version", candidate,
		"reason", reason, "shadowEvents", final.Events,
		"shadowICR", final.ShadowICR.Rate(), "primaryICR", final.PrimaryICR.Rate())
}

func (m *Manager) fail(stage string, err error) {
	m.mu.Lock()
	m.lastErr = fmt.Sprintf("%s: %v", stage, err)
	m.mu.Unlock()
	m.cfg.Logger.Error("lifecycle stage failed", "stage", stage, "err", err)
}

// Status reports the loop's current state.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		State:            "idle",
		ActiveVersion:    m.cfg.Engine.ActiveModelVersion(),
		CandidateVersion: m.candidate,
		LastDriftP:       m.lastDriftP,
		LastDriftAt:      m.lastDrift,
		Retrains:         m.retrains,
		Promotions:       m.promotions,
		Rollbacks:        m.rollbacks,
		LastError:        m.lastErr,
		Shadow:           m.cfg.Engine.ShadowStats(),
	}
	if m.candidate != 0 {
		st.State = "shadowing"
	}
	return st
}
