package stream

import (
	"fmt"
	"time"

	"cordial/internal/obs"
)

// engineMetrics is the engine's instrument set in the obs registry. The
// instruments ARE the engine's counters — EngineStats and /statsz read
// their values back out, so /metrics and /statsz can never disagree on a
// shared quantity. Durability instruments stay nil (and so no-op) when no
// WAL directory is configured, keeping /metrics free of dead series.
type engineMetrics struct {
	ingested       *obs.Counter
	actionsEmitted *obs.Counter
	actionsDropped *obs.Counter
	ingestWaitDur  *obs.Histogram
	processDur     *obs.Histogram

	// Model lifecycle.
	modelSwaps   *obs.Counter
	swapPauseDur *obs.Histogram
	shadowStarts *obs.Counter

	// Durability layer (nil without a WAL directory).
	snapshots         *obs.Counter
	snapshotErrors    *obs.Counter
	snapshotDur       *obs.Histogram
	snapshotBytes     *obs.Gauge
	retentionErrors   *obs.Counter
	recoveredSessions *obs.Gauge
	recoveredEvents   *obs.Gauge
}

// registerMetrics creates the engine's instruments and scrape-time gauges
// in the configured registry. Called from New after the shards exist and
// before any consumer starts; gauge callbacks take the shard mutexes, so
// a scrape observes the same consistency /statsz does.
func (e *Engine) registerMetrics() {
	reg := e.cfg.Metrics
	m := &e.metrics

	m.ingested = reg.Counter("cordial_ingest_accepted_total",
		"Events accepted by Ingest and enqueued to a shard.")
	m.actionsEmitted = reg.Counter("cordial_actions_emitted_total",
		"Mitigation actions delivered to the output channel.")
	m.actionsDropped = reg.Counter("cordial_actions_dropped_total",
		"Actions evicted from a full output channel to admit newer ones.")
	m.ingestWaitDur = reg.Histogram("cordial_ingest_wait_seconds",
		"Time Ingest spent enqueueing an event (the backpressure signal).", nil)
	m.processDur = reg.Histogram("cordial_process_seconds",
		"Per-event session time: feature extraction plus model inference.", nil)
	e.ingestWait.attach(m.ingestWaitDur)

	m.modelSwaps = reg.Counter("cordial_model_swaps_total",
		"Model swaps that took effect (new sessions bind the new version).")
	m.swapPauseDur = reg.Histogram("cordial_model_swap_pause_seconds",
		"Ingest pause taken by one model swap (journal the swap record under every shard's ingest lock).", nil)
	m.shadowStarts = reg.Counter("cordial_shadow_evaluations_total",
		"Shadow evaluations started.")
	reg.GaugeFunc("cordial_model_active_version",
		"Model version new sessions currently bind.",
		func() float64 { return float64(e.ActiveModelVersion()) })
	reg.GaugeFunc("cordial_shadow_active",
		"1 while a shadow evaluation is running, else 0.",
		func() float64 {
			if e.loadShadow() != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("cordial_shadow_events",
		"Events folded into the current shadow evaluation's candidate twins.",
		func() float64 { return float64(e.ShadowStats().Events) })
	reg.GaugeFunc("cordial_shadow_agreements",
		"Shadow-evaluation events where candidate and primary decided identically.",
		func() float64 { return float64(e.ShadowStats().Agreements) })
	reg.GaugeFunc("cordial_shadow_decisions",
		"Shadow-evaluation events where either side decided something.",
		func() float64 { return float64(e.ShadowStats().Decisions) })

	reg.GaugeFunc("cordial_uptime_seconds",
		"Seconds since the engine started.",
		func() float64 { return time.Since(e.start).Seconds() })
	reg.GaugeFunc("cordial_sessions_live",
		"Live per-bank sessions.",
		func() float64 { return float64(e.SessionCount()) })
	reg.GaugeFunc("cordial_sessions_degraded",
		"Sessions quarantined after a processing panic; they no longer feed their strategy session.",
		func() float64 {
			n := 0
			for _, s := range e.shards {
				s.mu.Lock()
				n += s.degraded
				s.mu.Unlock()
			}
			return float64(n)
		})
	reg.GaugeFunc("cordial_sessions_released",
		"Sessions that dropped their feature state after a terminal decision (bank spared).",
		func() float64 {
			n := 0
			for _, s := range e.shards {
				s.mu.Lock()
				n += s.released
				s.mu.Unlock()
			}
			return float64(n)
		})
	reg.GaugeFunc("cordial_feature_state_bytes",
		"Approximate resident bytes of all live sessions' incremental feature state.",
		func() float64 {
			var n int64
			for _, s := range e.shards {
				s.mu.Lock()
				n += s.stateBytes
				s.mu.Unlock()
			}
			return float64(n)
		})
	reg.GaugeFunc("cordial_feature_state_rows",
		"Tracked-row entries across live sessions' feature states.",
		func() float64 {
			var n int64
			for _, s := range e.shards {
				s.mu.Lock()
				n += s.stateRows
				s.mu.Unlock()
			}
			return float64(n)
		})

	for i, s := range e.shards {
		s := s
		shard := obs.L("shard", fmt.Sprintf("%d", i))
		s.dropped = reg.Counter("cordial_ingest_dropped_total",
			"Events shed at ingest by a full shard queue under the drop policy.", shard)
		s.processed = reg.Counter("cordial_events_processed_total",
			"Events fully run through a bank session.", shard)
		s.quarantined = reg.Counter("cordial_events_quarantined_total",
			"Events whose processing panicked; preserved in the dead-letter file when configured.", shard)
		s.process.attach(m.processDur)
		reg.GaugeFunc("cordial_shard_queue_depth",
			"Current shard input queue occupancy.",
			func() float64 { return float64(s.in.length()) }, shard)
		reg.GaugeFunc("cordial_shard_feature_state_bytes",
			"Per-shard breakdown of cordial_feature_state_bytes.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.stateBytes)
			}, shard)
	}

	if e.cfg.Durability.Dir == "" {
		return
	}
	m.snapshots = reg.Counter("cordial_snapshots_total",
		"Engine snapshots written successfully.")
	m.snapshotErrors = reg.Counter("cordial_snapshot_errors_total",
		"Engine snapshot attempts that failed (encode or write).")
	m.snapshotDur = reg.Histogram("cordial_snapshot_seconds",
		"Wall time of one engine snapshot (encode, write, retention).", nil)
	m.snapshotBytes = reg.Gauge("cordial_snapshot_last_bytes",
		"Payload size of the most recent successful snapshot.")
	m.retentionErrors = reg.Counter("cordial_retention_errors_total",
		"Failed post-snapshot retention steps (journal truncation or snapshot pruning); disk usage grows until one succeeds.")
	m.recoveredSessions = reg.Gauge("cordial_recovered_sessions",
		"Sessions restored from the snapshot at the last boot.")
	m.recoveredEvents = reg.Gauge("cordial_recovered_events",
		"Journal records replayed at the last boot (including ones skipped as already applied).")
	reg.GaugeFunc("cordial_snapshot_seq",
		"Sequence number of the most recent snapshot written or recovered from.",
		func() float64 {
			e.snapMu.Lock()
			defer e.snapMu.Unlock()
			return float64(e.snapSeq)
		})
}

// Metrics returns the engine's registry: its own instruments, the WAL's
// (when durability is on), and whatever else the caller registered (the
// HTTP server adds its instruments here). Rendered by GET /metrics.
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }
