package hbm

import (
	"strings"
	"testing"
	"testing/quick"

	"cordial/internal/xrand"
)

func TestDefaultGeometryValid(t *testing.T) {
	if err := DefaultGeometry.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero nodes", func(g *Geometry) { g.Nodes = 0 }},
		{"negative rows", func(g *Geometry) { g.RowsPerBank = -1 }},
		{"rows over encoding", func(g *Geometry) { g.RowsPerBank = 1 << 20 }},
		{"cols over encoding", func(g *Geometry) { g.ColsPerBank = 1 << 10 }},
		{"nodes over encoding", func(g *Geometry) { g.Nodes = 1 << 13 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := DefaultGeometry
			tc.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Fatal("Validate accepted invalid geometry")
			}
		})
	}
}

func TestGeometryCounts(t *testing.T) {
	g := DefaultGeometry
	if got, want := g.TotalNPUs(), 128*8; got != want {
		t.Errorf("TotalNPUs = %d, want %d", got, want)
	}
	if got, want := g.TotalHBMs(), 128*8*2; got != want {
		t.Errorf("TotalHBMs = %d, want %d", got, want)
	}
	if got, want := g.BanksPerHBM(), 2*8*2*4*4; got != want {
		t.Errorf("BanksPerHBM = %d, want %d", got, want)
	}
	if got, want := g.TotalBanks(), g.TotalHBMs()*g.BanksPerHBM(); got != want {
		t.Errorf("TotalBanks = %d, want %d", got, want)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	l := &ActiveProfile().Layout
	f := func(raw [numFields]uint32) bool {
		var a Address
		for fi := field(0); fi < numFields; fi++ {
			a.set(fi, int(raw[fi])%l.capacity(fi))
		}
		return Unpack(a.Pack()) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackCheckedRejectsOverflow(t *testing.T) {
	l := &ActiveProfile().Layout
	// The historical bug: Row = 1<<rowBits packed to a value whose row
	// silently read back as 0, corrupting bank keys. PackChecked must
	// reject every such field, for every field.
	for fi := field(0); fi < numFields; fi++ {
		var a Address
		a.set(fi, l.capacity(fi))
		if _, err := a.PackChecked(); err == nil {
			t.Errorf("PackChecked accepted %s = %d (capacity %d)", fieldNames[fi], l.capacity(fi), l.capacity(fi))
		}
		a.set(fi, -1)
		if _, err := a.PackChecked(); err == nil {
			t.Errorf("PackChecked accepted negative %s", fieldNames[fi])
		}
	}
	good := Address{Node: 3, NPU: 7, Row: 999, Column: 55}
	v, err := good.PackChecked()
	if err != nil {
		t.Fatalf("PackChecked rejected valid address: %v", err)
	}
	if v != good.Pack() {
		t.Fatalf("PackChecked = %#x, Pack = %#x", v, good.Pack())
	}
}

func TestUnpackCheckedRejectsStrayBits(t *testing.T) {
	a := Address{Node: 3, NPU: 7, Row: 999, Column: 55}
	if _, err := UnpackChecked(a.Pack()); err != nil {
		t.Fatalf("UnpackChecked rejected clean packed address: %v", err)
	}
	stray := a.Pack() | 1<<63
	if _, err := UnpackChecked(stray); err == nil {
		t.Fatal("UnpackChecked accepted a packed address with stray high bits")
	}
}

func TestPackDistinct(t *testing.T) {
	a := Address{Node: 1, Row: 5}
	b := Address{Node: 1, Row: 6}
	if a.Pack() == b.Pack() {
		t.Fatal("distinct addresses packed to the same value")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	g := DefaultGeometry
	r := xrand.New(99)
	for i := 0; i < 500; i++ {
		a := CellInBank(RandomBank(g, r), r.Intn(g.RowsPerBank), r.Intn(g.ColsPerBank))
		got, err := ParseAddress(a.String())
		if err != nil {
			t.Fatalf("ParseAddress(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip mismatch: %v vs %v", got, a)
		}
	}
}

func TestParseAddressErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"n1.u2",
		"x1.u2.h1.s0.c5.p1.g2.b3.r12345.col87",
		"n1.u2.h1.s0.c5.p1.g2.b3.rxyz.col87",
		"n-1.u2.h1.s0.c5.p1.g2.b3.r1.col87",
		"n1.u2.h1.s0.c5.p1.g2.b3.r1.col87.extra",
		// Non-canonical integers: lenient parsing would accept these but
		// render them back differently, breaking string-keyed dedup.
		"n+1.u2.h1.s0.c5.p1.g2.b3.r1.col87",
		"n01.u2.h1.s0.c5.p1.g2.b3.r1.col87",
		"n1.u2.h1.s0.c5.p1.g2.b3.r007.col87",
		"n1.u2.h1.s0.c5.p1.g2.b3.r1.col087",
		"n1.u2.h1.s0.c5.p1.g2.b3.r1.col 87",
		// Out of encoding range: would silently truncate under Pack.
		"n1.u2.h1.s0.c5.p1.g2.b3.r70000.col87",
		// Rank/device spelled out as zero: canonical form omits them.
		"n1.u2.h1.s0.c5.p1.g2.b3.k0.d0.r1.col87",
	} {
		if _, err := ParseAddress(s); err == nil {
			t.Errorf("ParseAddress(%q) succeeded, want error", s)
		}
	}
}

func TestParseAddressRankDevice(t *testing.T) {
	prev := ActivateProfile(DDR5DIMM)
	defer ActivateProfile(prev)
	a := Address{Node: 3, NPU: 1, Channel: 5, HBM: 1, Rank: 1, Device: 6, BankGroup: 2, Bank: 3, Row: 12345, Column: 87}
	s := a.String()
	got, err := ParseAddress(s)
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", s, err)
	}
	if got != a {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
	if !strings.Contains(s, ".k1.d6.") {
		t.Fatalf("String() = %q, want rank/device segments", s)
	}
}

func TestValidateAddress(t *testing.T) {
	g := DefaultGeometry
	good := Address{Node: g.Nodes - 1, Row: g.RowsPerBank - 1, Column: g.ColsPerBank - 1}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid address rejected: %v", err)
	}
	bad := good
	bad.Row = g.RowsPerBank
	if err := bad.Validate(g); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	neg := good
	neg.Column = -1
	if err := neg.Validate(g); err == nil {
		t.Fatal("negative column accepted")
	}
}

func TestTruncateHierarchy(t *testing.T) {
	a := Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1, BankGroup: 3, Bank: 2, Row: 999, Column: 55}
	tests := []struct {
		level Level
		want  Address
	}{
		{LevelRow, Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1, BankGroup: 3, Bank: 2, Row: 999}},
		{LevelBank, Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1, BankGroup: 3, Bank: 2}},
		{LevelBankGroup, Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1, BankGroup: 3}},
		{LevelPseudoChannel, Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1}},
		{LevelChannel, Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6}},
		{LevelSID, Address{Node: 3, NPU: 7, HBM: 1, SID: 1}},
		{LevelHBM, Address{Node: 3, NPU: 7, HBM: 1}},
		{LevelNPU, Address{Node: 3, NPU: 7}},
	}
	for _, tc := range tests {
		if got := a.Truncate(tc.level); got != tc.want {
			t.Errorf("Truncate(%v) = %+v, want %+v", tc.level, got, tc.want)
		}
	}
}

func TestEntityKeyGrouping(t *testing.T) {
	a := Address{Node: 1, NPU: 2, HBM: 1, SID: 0, Channel: 3, PseudoChannel: 1, BankGroup: 2, Bank: 1, Row: 100, Column: 4}
	b := a
	b.Row = 200
	b.Column = 9
	if a.EntityKey(LevelBank) != b.EntityKey(LevelBank) {
		t.Fatal("same-bank addresses have different bank keys")
	}
	c := a
	c.Bank = 2
	if a.EntityKey(LevelBank) == c.EntityKey(LevelBank) {
		t.Fatal("different banks share a bank key")
	}
	if a.EntityKey(LevelBankGroup) != c.EntityKey(LevelBankGroup) {
		t.Fatal("same-group addresses have different group keys")
	}
}

func TestSameBankAndRowKeys(t *testing.T) {
	a := Address{Node: 1, Row: 10, Column: 3}
	b := Address{Node: 1, Row: 10, Column: 99}
	c := Address{Node: 1, Row: 11}
	if !a.SameBank(b) || !a.SameBank(c) {
		t.Fatal("SameBank false for same-bank addresses")
	}
	if a.RowKey() != b.RowKey() {
		t.Fatal("same-row addresses have different row keys")
	}
	if a.RowKey() == c.RowKey() {
		t.Fatal("different rows share a row key")
	}
}

func TestRowDistance(t *testing.T) {
	a := Address{Row: 100}
	b := Address{Row: 228}
	if got := RowDistance(a, b); got != 128 {
		t.Fatalf("RowDistance = %d, want 128", got)
	}
	if got := RowDistance(b, a); got != 128 {
		t.Fatalf("RowDistance reversed = %d, want 128", got)
	}
	if got := RowDistance(a, a); got != 0 {
		t.Fatalf("RowDistance self = %d, want 0", got)
	}
}

func TestRandomBankWithinBounds(t *testing.T) {
	g := DefaultGeometry
	r := xrand.New(7)
	for i := 0; i < 1000; i++ {
		b := RandomBank(g, r)
		if err := b.Validate(g); err != nil {
			t.Fatalf("RandomBank produced invalid address: %v", err)
		}
		if b.Row != 0 || b.Column != 0 {
			t.Fatalf("RandomBank produced non-zero row/col: %+v", b)
		}
	}
}

func TestClampRow(t *testing.T) {
	g := DefaultGeometry
	for _, tc := range []struct{ in, want int }{
		{-5, 0}, {0, 0}, {100, 100},
		{g.RowsPerBank - 1, g.RowsPerBank - 1},
		{g.RowsPerBank, g.RowsPerBank - 1},
		{g.RowsPerBank + 99, g.RowsPerBank - 1},
	} {
		if got := g.ClampRow(tc.in); got != tc.want {
			t.Errorf("ClampRow(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	if LevelPseudoChannel.String() != "PS-CH" {
		t.Errorf("LevelPseudoChannel.String() = %q", LevelPseudoChannel.String())
	}
	if Level(99).String() != "Level(99)" {
		t.Errorf("unknown level String() = %q", Level(99).String())
	}
}

func TestTableLevelsOrder(t *testing.T) {
	want := []string{"NPU", "HBM", "SID", "PS-CH", "BG", "Bank", "Row"}
	if len(TableLevels) != len(want) {
		t.Fatalf("TableLevels has %d entries, want %d", len(TableLevels), len(want))
	}
	for i, l := range TableLevels {
		if l.String() != want[i] {
			t.Errorf("TableLevels[%d] = %s, want %s", i, l, want[i])
		}
	}
}

func TestCellInBank(t *testing.T) {
	bank := BankAddress{Node: 2, Bank: 3}
	a := CellInBank(bank, 77, 12)
	if a.Row != 77 || a.Column != 12 || a.Node != 2 || a.Bank != 3 {
		t.Fatalf("CellInBank = %+v", a)
	}
	if BankOf(a) != bank {
		t.Fatalf("BankOf(CellInBank(...)) = %+v, want %+v", BankOf(a), bank)
	}
}

func BenchmarkPack(b *testing.B) {
	a := Address{Node: 3, NPU: 7, HBM: 1, SID: 1, Channel: 6, PseudoChannel: 1, BankGroup: 3, Bank: 2, Row: 999, Column: 55}
	for i := 0; i < b.N; i++ {
		_ = a.Pack()
	}
}

func BenchmarkParseAddress(b *testing.B) {
	s := Address{Node: 3, NPU: 7, Row: 999, Column: 55}.String()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddress(s); err != nil {
			b.Fatal(err)
		}
	}
}
