// Command cordial-chaos is the fleet-scale stress harness: it runs YAML
// chaos scenarios against the real serving daemons — generating
// weighted-template workloads, injecting kills, disk faults, clock skew,
// poisoned events and router partitions on a timeline — and scores the
// run against the scenario's SLOs, emitting JSON and HTML reports.
//
// Usage:
//
//	cordial-chaos run scenario.yaml [--seed N] [--bin DIR] [--work DIR] [--json PATH] [--html PATH]
//	cordial-chaos validate scenario.yaml...
//	cordial-chaos plan scenario.yaml [--seed N]
//
// run executes a scenario end to end; its exit status is the SLO verdict.
// validate parses and checks scenarios without running anything, for CI.
// plan prints the deterministic run plan (event counts, digest, resolved
// chaos schedule) without starting any process — two invocations with the
// same seed must print the same digest.
package main

import (
	"flag"
	"fmt"
	"os"

	"cordial/internal/chaos"
	"cordial/internal/hbm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "validate":
		os.Exit(cmdValidate(os.Args[2:]))
	case "plan":
		os.Exit(cmdPlan(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cordial-chaos: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cordial-chaos — scenario-driven stress and failure testing

  cordial-chaos run scenario.yaml [flags]    execute a scenario, exit 0 iff SLOs pass
  cordial-chaos validate scenario.yaml...    parse + validate scenarios (no processes)
  cordial-chaos plan scenario.yaml [flags]   print the deterministic run plan

run/plan flags:
  --seed N     override the scenario seed
  --bin DIR    prebuilt daemon binaries (default: go build from the module)
  --work DIR   scratch directory (default: temp dir, removed on pass)
  --json PATH  write the JSON report here (overrides scenario report.json)
  --html PATH  write the HTML report here (overrides scenario report.html)
`)
}

func parseRunFlags(name string, args []string) (*flag.FlagSet, *uint64, *string, *string, *string, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	seed := fs.Uint64("seed", 0, "override the scenario seed")
	bin := fs.String("bin", "", "directory with prebuilt daemon binaries")
	work := fs.String("work", "", "scratch directory")
	jsonOut := fs.String("json", "", "JSON report path")
	htmlOut := fs.String("html", "", "HTML report path")
	return fs, seed, bin, work, jsonOut, htmlOut
}

func splitScenarioArg(fs *flag.FlagSet, args []string) (string, error) {
	// Accept both "run scenario.yaml --seed 42" and "run --seed 42 scenario.yaml".
	var path string
	rest := args
	if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		path, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return "", err
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		return "", fmt.Errorf("scenario file required")
	}
	return path, nil
}

func cmdRun(args []string) int {
	fs, seed, bin, work, jsonOut, htmlOut := parseRunFlags("run", args)
	path, err := splitScenarioArg(fs, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos run: %v\n", err)
		return 2
	}
	sc, err := chaos.LoadScenario(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos: %v\n", err)
		return 2
	}
	if *jsonOut != "" {
		sc.Report.JSON = *jsonOut
	}
	if *htmlOut != "" {
		sc.Report.HTML = *htmlOut
	}

	rep, err := chaos.Run(sc, chaos.RunOptions{
		BinDir: *bin, WorkDir: *work, Seed: *seed, Log: os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos: %v\n", err)
		if rep != nil {
			printSummary(rep)
		}
		return 1
	}
	printSummary(rep)
	if !rep.Pass {
		return 1
	}
	return 0
}

func printSummary(rep *chaos.Report) {
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("%s: %s (seed %d, digest %s, %s)\n",
		verdict, rep.Scenario, rep.Seed, rep.PlanDigest, rep.RunDuration())
	for _, c := range rep.SLOs {
		mark := "ok  "
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %-22s target %-14s observed %s\n", mark, c.Name, c.Target, c.Observed)
	}
}

func cmdValidate(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "cordial-chaos validate: at least one scenario file required")
		return 2
	}
	bad := 0
	for _, path := range args {
		sc, err := chaos.LoadScenario(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "INVALID %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("ok %s: %q (%d nodes, %d banks, %d chaos actions)\n",
			path, sc.Name, sc.Fleet.Nodes, sc.FleetGen.TotalBanks, len(sc.Chaos))
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func cmdPlan(args []string) int {
	fs, seed, _, _, _, _ := parseRunFlags("plan", args)
	path, err := splitScenarioArg(fs, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos plan: %v\n", err)
		return 2
	}
	sc, err := chaos.LoadScenario(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos: %v\n", err)
		return 2
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	plan, err := chaos.BuildPlan(sc, hbm.DefaultGeometry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cordial-chaos: %v\n", err)
		return 1
	}
	fmt.Printf("scenario %s seed %d\nplan digest %s\nbanks %d (faulty %d), events %d\n",
		sc.Name, sc.Seed, plan.Digest, plan.Fleet.Banks, plan.Fleet.Faulty, len(plan.Fleet.Events))
	for _, a := range plan.Chaos {
		fmt.Printf("  t+%-8v %-18s %s\n", a.At, a.Action, a.Target)
	}
	return 0
}
