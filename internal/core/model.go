// Package core implements Cordial itself (§IV): failure-pattern feature
// extraction feeding a three-way pattern classifier trained on the first
// three UERs of a bank, cross-row failure prediction over 16 blocks of 8
// rows in the ±64-row window around the last UER, and the isolation policy
// that row-spares predicted rows for aggregation patterns and bank-spares
// scattered ones. The package also provides the industrial baselines the
// paper compares against and the evaluation harness that produces the
// Table III / Table IV numbers.
package core

import (
	"fmt"
	"runtime"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/mltree"
)

// ModelKind selects the tree-ensemble backend (§IV-C evaluates all three).
type ModelKind int

// Model backends.
const (
	// RandomForest is bagged CART trees — the paper's best performer.
	RandomForest ModelKind = iota + 1
	// XGBoost is second-order gradient boosting with exact splits.
	XGBoost
	// LightGBM is histogram gradient boosting with leaf-wise growth and
	// GOSS.
	LightGBM
)

// AllModelKinds lists the backends in Table III/IV order.
var AllModelKinds = []ModelKind{LightGBM, XGBoost, RandomForest}

// String returns the paper's name for the backend.
func (k ModelKind) String() string {
	switch k {
	case RandomForest:
		return "Random Forest"
	case XGBoost:
		return "XGBoost"
	case LightGBM:
		return "LightGBM"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ShortName returns the Table IV style suffix (RF, XGB, LGBM).
func (k ModelKind) ShortName() string {
	switch k {
	case RandomForest:
		return "RF"
	case XGBoost:
		return "XGB"
	case LightGBM:
		return "LGBM"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ModelParams tunes ensemble sizes; zero values take calibrated defaults.
type ModelParams struct {
	// Trees is the forest size or boosting round count.
	Trees int
	// Depth bounds individual trees (forest and XGBoost).
	Depth int
	// Leaves bounds LightGBM's leaf-wise growth.
	Leaves int
	// LearningRate applies to the boosting backends.
	LearningRate float64
	// Parallelism caps the goroutines used for training (forest members,
	// boosting arms, split search) and batch inference; <=0 means
	// runtime.GOMAXPROCS(0). Predictions are identical for any value.
	Parallelism int
}

func (p ModelParams) withDefaults() ModelParams {
	if p.Trees <= 0 {
		p.Trees = 80
	}
	if p.Depth <= 0 {
		p.Depth = 8
	}
	if p.Leaves <= 0 {
		p.Leaves = 31
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.GOMAXPROCS(0)
	}
	return p
}

// NewModel constructs an unfitted classifier of the given kind.
func NewModel(kind ModelKind, params ModelParams, seed uint64) (mltree.Classifier, error) {
	p := params.withDefaults()
	switch kind {
	case RandomForest:
		// Forest members grow deeper than boosted trees (closer to
		// scikit-learn's unpruned default), relying on bagging rather
		// than pruning for variance control.
		return mltree.NewForest(mltree.ForestConfig{
			NumTrees:    p.Trees,
			Tree:        mltree.TreeConfig{MaxDepth: p.Depth + 4, MaxFeatures: -1},
			Parallelism: p.Parallelism,
			Seed:        seed,
		}), nil
	case XGBoost:
		return mltree.NewGBDT(mltree.GBDTConfig{
			Rounds:         p.Trees,
			LearningRate:   p.LearningRate,
			MaxDepth:       minInt(p.Depth, 5),
			SubsampleRatio: 0.9,
			ColsampleRatio: 0.9,
			Parallelism:    p.Parallelism,
			Seed:           seed,
		}), nil
	case LightGBM:
		return mltree.NewHistGBDT(mltree.HistGBDTConfig{
			Rounds:       p.Trees,
			LearningRate: p.LearningRate,
			MaxLeaves:    p.Leaves,
			Parallelism:  p.Parallelism,
			Seed:         seed,
		}), nil
	default:
		return nil, fmt.Errorf("core: unknown model kind %d", int(kind))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BuildPatternDataset assembles the §IV-B pattern-classification dataset:
// one sample per bank with at least one UER, labelled with the bank's
// ground-truth class. Banks whose feature extraction fails are skipped.
// With errBits set, each vector gains the intra-word error-bit columns.
func BuildPatternDataset(banks []*faultsim.BankFault, cfg features.PatternConfig, errBits bool) (*mltree.Dataset, error) {
	ds := &mltree.Dataset{Names: patternFeatureNames(errBits)}
	for _, bf := range banks {
		st, err := features.NewBankState(cfg, features.DefaultBlockSpec())
		if err != nil {
			return nil, err
		}
		for _, e := range bf.Events {
			st.Observe(e)
		}
		vec, err := patternVectorOf(st, errBits)
		if err != nil {
			continue // bank without UERs: nothing to classify
		}
		ds.Features = append(ds.Features, vec)
		ds.Labels = append(ds.Labels, int(bf.Class()))
	}
	if ds.NumSamples() == 0 {
		return nil, fmt.Errorf("core: no banks with UERs to build a pattern dataset")
	}
	return ds, nil
}

// blockInstances generates the §IV-D training instances of one bank: after
// every observed first-UER from the warmup-th onward, one sample per block,
// labelled by whether any UER event — a new row failing or a known row
// recurring — lands in that block strictly after the decision time.
//
// The bank's events are replayed exactly once through an incremental
// feature state: BankFault.Events are time-sorted and UERTimes is
// nondecreasing, so each decision point only needs to fold in the events
// between the previous cutoff and its own. This replaces the earlier
// prefix-slice recomputation, which was quadratic in the event count per
// bank.
func blockInstances(bf *faultsim.BankFault, spec features.BlockSpec, warmup int) (vecs [][]float64, labels []int, err error) {
	n := len(bf.UERRows)
	if warmup < 1 {
		warmup = 1
	}
	if n < warmup {
		return nil, nil, nil
	}
	st, err := features.NewBankState(features.DefaultPatternConfig(), spec)
	if err != nil {
		return nil, nil, err
	}
	next := 0
	for k := warmup; k <= n; k++ {
		anchor := bf.UERRows[k-1]
		now := bf.UERTimes[k-1]
		for next < len(bf.Events) && !bf.Events[next].Time.After(now) {
			st.Observe(bf.Events[next])
			next++
		}
		for b := 0; b < spec.NumBlocks(); b++ {
			vec, err := st.BlockVector(anchor, b, now)
			if err != nil {
				return nil, nil, err
			}
			label := 0
			if blockHasFutureUER(bf, spec, anchor, b, now) {
				label = 1
			}
			vecs = append(vecs, vec)
			labels = append(labels, label)
		}
	}
	return vecs, labels, nil
}

// blockHasFutureUER reports whether any UER event of the bank falls in the
// block's row range strictly after now. Repeat UERs of already-failed rows
// count: §IV-D's objective is "whether there will be a UER in each block",
// and a recurring row is precisely the failure the isolation would absorb.
func blockHasFutureUER(bf *faultsim.BankFault, spec features.BlockSpec, anchor, block int, now time.Time) bool {
	lo, hi := spec.BlockRange(anchor, block)
	for _, e := range bf.Events {
		if e.Class != ecc.ClassUER || !e.Time.After(now) {
			continue
		}
		if e.Addr.Row >= lo && e.Addr.Row <= hi {
			return true
		}
	}
	return false
}

// BuildBlockDataset assembles the cross-row prediction dataset from the
// aggregation-pattern banks (the only banks Cordial cross-row predicts on).
// warmup is the number of UERs observed before the first prediction — the
// pattern classifier's UER budget in the full pipeline.
func BuildBlockDataset(banks []*faultsim.BankFault, spec features.BlockSpec, warmup int) (*mltree.Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ds := &mltree.Dataset{Names: features.BlockFeatureNames()}
	for _, bf := range banks {
		if !bf.Class().IsAggregation() {
			continue
		}
		vecs, labels, err := blockInstances(bf, spec, warmup)
		if err != nil {
			return nil, err
		}
		ds.Features = append(ds.Features, vecs...)
		ds.Labels = append(ds.Labels, labels...)
	}
	if ds.NumSamples() == 0 {
		return nil, fmt.Errorf("core: no aggregation banks to build a block dataset")
	}
	return ds, nil
}
