package hbm

import (
	"testing"
	"testing/quick"
)

func TestIdentityMap(t *testing.T) {
	m := IdentityMap{NumRows: 1024}
	if err := CheckBijective(m); err != nil {
		t.Fatal(err)
	}
	if m.ToPhysical(17) != 17 || m.ToLogical(17) != 17 {
		t.Fatal("identity map not identity")
	}
	if PhysicalDistance(m, 100, 228) != 128 {
		t.Fatal("identity distance wrong")
	}
}

func TestXorMap(t *testing.T) {
	m, err := NewXorMap(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBijective(m); err != nil {
		t.Fatal(err)
	}
	// Top-bit mask: logical 0 and 512 are physical 512 and 0 — adjacent
	// logical clusters half the bank apart share a physical neighbourhood.
	if m.ToPhysical(0) != 512 || m.ToPhysical(512) != 0 {
		t.Fatal("top-bit scramble wrong")
	}
	// Logical rows 3 and 515 sit half the bank apart logically but map to
	// physical 515 and 3 — still 512 apart, while logical 3 and 514 map to
	// physical 515 and 2: the scramble preserves pair distances only up to
	// the XOR geometry.
	if d := PhysicalDistance(m, 3, 515); d != 512 {
		t.Fatalf("distance = %d, want 512", d)
	}
	if d := PhysicalDistance(m, 0, 513); d != 511 {
		t.Fatalf("distance = %d, want 511", d)
	}
}

func TestXorMapErrors(t *testing.T) {
	if _, err := NewXorMap(1000, 1); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
	if _, err := NewXorMap(1024, 1024); err == nil {
		t.Error("out-of-range mask accepted")
	}
	if _, err := NewXorMap(1024, -1); err == nil {
		t.Error("negative mask accepted")
	}
}

func TestXorMapInvolutionProperty(t *testing.T) {
	m, err := NewXorMap(1<<15, 0x4a5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(row uint16) bool {
		r := int(row) % m.Rows()
		return m.ToLogical(m.ToPhysical(r)) == r && m.ToPhysical(m.ToLogical(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorMap(t *testing.T) {
	m, err := NewMirrorMap(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBijective(m); err != nil {
		t.Fatal(err)
	}
	// Lower half identical; upper half reversed: logical 4..7 → 7..4.
	for r := 0; r < 4; r++ {
		if m.ToPhysical(r) != r {
			t.Fatalf("lower half moved: %d -> %d", r, m.ToPhysical(r))
		}
	}
	if m.ToPhysical(4) != 7 || m.ToPhysical(7) != 4 {
		t.Fatalf("upper half mirror wrong: 4->%d 7->%d", m.ToPhysical(4), m.ToPhysical(7))
	}
	// The half-total-row signature: logical 0 and logical 7 (near half+end)
	// are physical neighbours... logical 7 -> physical 4; logical 3 ->
	// physical 3; so logical 3 and 7 (4 apart = half the bank) map to
	// physical 3 and 4 — adjacent.
	if d := PhysicalDistance(m, 3, 7); d != 1 {
		t.Fatalf("mirrored neighbour distance = %d, want 1", d)
	}
}

func TestMirrorMapErrors(t *testing.T) {
	if _, err := NewMirrorMap(7); err == nil {
		t.Error("odd row count accepted")
	}
	if _, err := NewMirrorMap(0); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestMirrorMapBijectiveLarge(t *testing.T) {
	m, err := NewMirrorMap(DefaultGeometry.RowsPerBank)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBijective(m); err != nil {
		t.Fatal(err)
	}
}

// brokenMap violates bijectivity for CheckBijective coverage.
type brokenMap struct{ n int }

func (b brokenMap) ToPhysical(l int) int { return l / 2 }
func (b brokenMap) ToLogical(p int) int  { return p * 2 }
func (b brokenMap) Rows() int            { return b.n }

func TestCheckBijectiveRejectsBrokenMap(t *testing.T) {
	if err := CheckBijective(brokenMap{n: 8}); err == nil {
		t.Fatal("broken map accepted")
	}
	if err := CheckBijective(brokenMap{n: 0}); err == nil {
		t.Fatal("empty domain accepted")
	}
}
