// Command cordial-predict runs a trained Cordial pipeline over an MCE log:
// for every bank with enough UERs it classifies the failure pattern and
// prints the recommended mitigation — the rows to spare for aggregation
// patterns (from cross-row block prediction) or bank sparing for scattered
// patterns.
//
// Usage:
//
//	cordial-predict -models models.json -log fleet.mcelog -format binary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cordial/internal/core"
	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cordial-predict:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelsPath = flag.String("models", "models.json", "model path from cordial-train")
		logPath    = flag.String("log", "fleet.mcelog", "input error-log path")
		format     = flag.String("format", "binary", "log format: binary, jsonl or stream")
		maxRows    = flag.Int("max-rows", 16, "max predicted rows to print per bank")
		topology   = flag.String("topology", hbm.ActiveProfile().Name, "topology profile the log was generated under: "+strings.Join(hbm.ProfileNames(), ", "))
	)
	flag.Parse()

	prof, err := hbm.SetActiveProfile(*topology)
	if err != nil {
		return err
	}

	modelsFile, err := os.Open(*modelsPath)
	if err != nil {
		return err
	}
	defer modelsFile.Close()
	// The backend kind is restored from the saved header.
	pipe, err := core.New(core.DefaultConfig(core.RandomForest))
	if err != nil {
		return err
	}
	if err := pipe.LoadModels(modelsFile); err != nil {
		return err
	}
	if meta := pipe.Meta(); meta != nil {
		fmt.Fprintf(os.Stderr, "model: trainedAt=%s banks=%d events=%d trees=%d\n",
			meta.TrainedAt.Format(time.RFC3339), meta.BankCount, meta.EventCount, meta.Params.Trees)
	}

	logFile, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	defer logFile.Close()
	var log *mcelog.Log
	switch *format {
	case "binary":
		log, err = mcelog.ReadBinary(logFile)
	case "jsonl":
		log, err = mcelog.ReadJSONL(logFile)
	case "stream":
		log, err = mcelog.NewStreamReader(logFile).ReadAll()
	default:
		return fmt.Errorf("unknown format %q (want binary, jsonl or stream)", *format)
	}
	if err != nil {
		return err
	}
	log.Sort()

	geo := prof.Geometry
	budget := pipe.Config().Pattern.UERBudget
	groups := log.GroupByBank()
	keys := log.BankKeys()
	classified := 0
	for _, key := range keys {
		events := groups[key]
		// Find the last distinct UER row (the prediction anchor) and
		// count distinct UER rows.
		seen := make(map[int]bool)
		anchor, anchorIdx := -1, -1
		for i, e := range events {
			if e.Class == ecc.ClassUER && !seen[e.Addr.Row] {
				seen[e.Addr.Row] = true
				anchor, anchorIdx = e.Addr.Row, i
			}
		}
		if len(seen) < budget {
			continue
		}
		class, err := pipe.ClassifyPattern(events)
		if err != nil {
			continue
		}
		bank := hbm.Unpack(key)
		classified++
		if !class.IsAggregation() {
			fmt.Printf("%s  pattern=%q  action=bank-spare\n", bank, class)
			continue
		}
		// Predict as of the anchor UER: only events at or before it are
		// observable (later events would push time-since-last negative, a
		// regime the models never trained on).
		now := events[anchorIdx].Time
		visible := events[:0:0]
		for _, e := range events {
			if !e.Time.After(now) {
				visible = append(visible, e)
			}
		}
		probs, err := pipe.PredictBlocks(visible, anchor, now)
		if err != nil {
			return err
		}
		rows := pipe.PredictRows(probs, anchor, geo)
		if len(rows) > *maxRows {
			rows = rows[:*maxRows]
		}
		sort.Ints(rows)
		fmt.Printf("%s  pattern=%q  action=row-spare  anchor=%d  rows=%v\n",
			bank, class, anchor, rows)
	}
	fmt.Printf("classified %d of %d error banks (threshold %.3f)\n",
		classified, len(keys), pipe.Config().Threshold)
	return nil
}
