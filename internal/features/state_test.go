package features

import (
	"math"
	"testing"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
	"cordial/internal/mcelog"
	"cordial/internal/xrand"
)

// vecBitsEqual reports bit-identity of two vectors (the equivalence
// contract is exact, not within-epsilon).
func vecBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// assertPrefixEquivalence feeds events through one long-lived BankState and
// checks, after every event, that its pattern and block vectors are
// bit-identical to the batch reference over the same prefix.
func assertPrefixEquivalence(t *testing.T, events []mcelog.Event, cfg PatternConfig, spec BlockSpec) {
	t.Helper()
	st, err := NewBankState(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	lastUERRow := -1
	for i, e := range events {
		st.Observe(e)
		if e.Class == ecc.ClassUER {
			lastUERRow = e.Addr.Row
		}
		prefix := events[:i+1]

		gotP, gotErr := st.PatternVector()
		wantP, wantErr := referencePatternVector(prefix, cfg)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("prefix %d: pattern error mismatch: incremental %v, reference %v", i+1, gotErr, wantErr)
		}
		if gotErr == nil && !vecBitsEqual(gotP, wantP) {
			t.Fatalf("prefix %d: pattern vector diverged:\nincremental %v\nreference   %v", i+1, gotP, wantP)
		}

		anchor := lastUERRow
		if anchor < 0 {
			anchor = e.Addr.Row
		}
		// Query at the current event time and strictly after it (the
		// online engine decides at the event; offline builders may not).
		for _, now := range []time.Time{e.Time, e.Time.Add(90 * time.Minute)} {
			for b := 0; b < spec.NumBlocks(); b++ {
				got, err1 := st.BlockVector(anchor, b, now)
				want, err2 := referenceBlockVector(prefix, anchor, spec, b, now)
				if err1 != nil || err2 != nil {
					t.Fatalf("prefix %d block %d: errors %v / %v", i+1, b, err1, err2)
				}
				if !vecBitsEqual(got, want) {
					t.Fatalf("prefix %d block %d now=%v: block vector diverged:\nincremental %v\nreference   %v",
						i+1, b, now, got, want)
				}
			}
		}
	}
}

func TestIncrementalEquivalenceTable(t *testing.T) {
	smallSpec := BlockSpec{WindowRadius: 8, BlockSize: 4}
	cases := []struct {
		name   string
		cfg    PatternConfig
		spec   BlockSpec
		events []mcelog.Event
	}{
		{
			name: "no UERs at all",
			cfg:  DefaultPatternConfig(), spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 100, ecc.ClassCE), ev(1, 105, ecc.ClassCE), ev(2, 90, ecc.ClassUEO),
			},
		},
		{
			name: "UER is the very first event",
			cfg:  DefaultPatternConfig(), spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 50, ecc.ClassUER), ev(1, 51, ecc.ClassCE), ev(2, 52, ecc.ClassUER),
			},
		},
		{
			name: "exactly the budget, with repeats",
			cfg:  DefaultPatternConfig(), spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 10, ecc.ClassCE), ev(1, 12, ecc.ClassUER), ev(2, 12, ecc.ClassUER),
				ev(3, 14, ecc.ClassUER), ev(4, 11, ecc.ClassUEO), ev(5, 16, ecc.ClassUER),
			},
		},
		{
			name: "events after the budget are invisible to the pattern stage",
			cfg:  PatternConfig{UERBudget: 2}, spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 20, ecc.ClassCE), ev(1, 22, ecc.ClassUER), ev(2, 24, ecc.ClassUER),
				ev(3, 26, ecc.ClassCE), ev(4, 28, ecc.ClassUER), ev(5, 30, ecc.ClassUEO),
			},
		},
		{
			name: "pending events become visible when the cutoff extends",
			cfg:  DefaultPatternConfig(), spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 40, ecc.ClassUER), ev(1, 41, ecc.ClassCE), ev(2, 43, ecc.ClassCE),
				ev(3, 44, ecc.ClassUEO), ev(4, 45, ecc.ClassUER), ev(5, 47, ecc.ClassCE),
				ev(6, 48, ecc.ClassUER),
			},
		},
		{
			name: "ties: CE shares the first UER timestamp",
			cfg:  DefaultPatternConfig(), spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 60, ecc.ClassCE), ev(1, 61, ecc.ClassCE), ev(1, 62, ecc.ClassUER),
				ev(1, 63, ecc.ClassCE), ev(2, 64, ecc.ClassUER),
			},
		},
		{
			name: "ties: events at the final cutoff timestamp stay visible",
			cfg:  PatternConfig{UERBudget: 2}, spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 70, ecc.ClassUER), ev(1, 72, ecc.ClassUER), ev(1, 73, ecc.ClassCE),
				ev(1, 74, ecc.ClassUER), ev(1, 75, ecc.ClassUEO), ev(2, 76, ecc.ClassCE),
			},
		},
		{
			name: "budget one",
			cfg:  PatternConfig{UERBudget: 1}, spec: smallSpec,
			events: []mcelog.Event{
				ev(0, 80, ecc.ClassCE), ev(1, 82, ecc.ClassUER), ev(2, 84, ecc.ClassUER),
				ev(3, 86, ecc.ClassCE),
			},
		},
		{
			name: "paper geometry",
			cfg:  DefaultPatternConfig(), spec: DefaultBlockSpec(),
			events: []mcelog.Event{
				ev(0, 500, ecc.ClassCE), ev(0.5, 510, ecc.ClassCE), ev(1, 505, ecc.ClassUER),
				ev(1.5, 515, ecc.ClassUEO), ev(2, 508, ecc.ClassUER), ev(2.5, 520, ecc.ClassUER),
				ev(3, 505, ecc.ClassUER), ev(3.5, 530, ecc.ClassCE),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertPrefixEquivalence(t, tc.events, tc.cfg, tc.spec)
		})
	}
}

// TestIncrementalEquivalenceRandom replays seeded random streams (row
// clusters, duplicate timestamps, all classes) through the prefix check.
func TestIncrementalEquivalenceRandom(t *testing.T) {
	r := xrand.New(31)
	for trial := 0; trial < 20; trial++ {
		n := 10 + r.Intn(70)
		events := make([]mcelog.Event, 0, n)
		now := t0
		row := 200 + r.Intn(100)
		for i := 0; i < n; i++ {
			if r.Bool(0.7) {
				// duplicate timestamps are common in bursts
				now = now.Add(time.Duration(r.Intn(5)) * 13 * time.Minute)
			}
			switch {
			case r.Bool(0.6):
				row = 200 + r.Intn(100)
			default:
				row += r.Intn(9) - 4
				if row < 0 {
					row = 0
				}
			}
			class := []ecc.Class{ecc.ClassCE, ecc.ClassCE, ecc.ClassUEO, ecc.ClassUER}[r.Intn(4)]
			events = append(events, mcelog.Event{Time: now, Addr: hbmAddr(row), Class: class})
		}
		cfg := PatternConfig{UERBudget: 1 + r.Intn(4)}
		assertPrefixEquivalence(t, events, cfg, BlockSpec{WindowRadius: 8, BlockSize: 4})
	}
}

// TestBankStateFootprintBounded pins the bounded-memory claim: a session
// 10× longer in events but confined to the same rows must not grow the
// tracked-row footprint at all.
func TestBankStateFootprintBounded(t *testing.T) {
	build := func(n int) StateFootprint {
		st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			class := ecc.ClassCE
			if i%20 == 19 {
				class = ecc.ClassUER
			}
			st.Observe(mcelog.Event{
				Time:  t0.Add(time.Duration(i) * time.Minute),
				Addr:  hbmAddr(300 + i%32),
				Class: class,
			})
		}
		return st.Footprint()
	}
	small, large := build(1000), build(10000)
	if small.Events != 1000 || large.Events != 10000 {
		t.Fatalf("event counts %d/%d", small.Events, large.Events)
	}
	if large.TrackedRows != small.TrackedRows {
		t.Errorf("tracked rows grew with history: %d → %d", small.TrackedRows, large.TrackedRows)
	}
	if large.ApproxBytes != small.ApproxBytes {
		t.Errorf("approx bytes grew with history: %d → %d", small.ApproxBytes, large.ApproxBytes)
	}
	if small.TrackedRows == 0 || small.ApproxBytes <= bankStateFixedBytes {
		t.Errorf("implausibly small footprint: %+v", small)
	}
}

// TestBankStateEmpty pins the documented fresh-state semantics: no pattern
// vector before the first UER, Missing sentinels in block vectors.
func TestBankStateEmpty(t *testing.T) {
	st, err := NewBankState(DefaultPatternConfig(), DefaultBlockSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PatternVector(); err == nil {
		t.Error("PatternVector on fresh state succeeded; want error until first UER")
	}
	vec, err := st.BlockVector(100, 0, t0)
	if err != nil {
		t.Fatal(err)
	}
	names := BlockFeatureNames()
	for i, v := range vec {
		switch names[i] {
		case "ce_count", "ueo_count", "uer_count", "all_count",
			"block_prior_error_count", "block_prior_uer_count", "uer_rows_observed":
			if v != 0 {
				t.Errorf("%s = %g on fresh state, want 0", names[i], v)
			}
		case "block_offset_rows", "block_abs_offset_rows", "anchor_row":
			// geometry, defined without events
		default:
			if v != Missing {
				t.Errorf("%s = %g on fresh state, want Missing", names[i], v)
			}
		}
	}
	if _, err := st.BlockVector(100, -1, t0); err == nil {
		t.Error("negative block index accepted")
	}
	if _, err := st.BlockVector(100, DefaultBlockSpec().NumBlocks(), t0); err == nil {
		t.Error("out-of-range block index accepted")
	}
}

// TestNewBankStateDefaultsBudget mirrors PatternVector's defaulting of a
// non-positive budget to the paper's 3.
func TestNewBankStateDefaultsBudget(t *testing.T) {
	st, err := NewBankState(PatternConfig{}, DefaultBlockSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.cfg.UERBudget != 3 {
		t.Errorf("defaulted budget %d, want 3", st.cfg.UERBudget)
	}
	if _, err := NewBankState(DefaultPatternConfig(), BlockSpec{WindowRadius: 5, BlockSize: 3}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// hbmAddr builds a row-only address (bank fields zero), matching the ev
// helper in features_test.go.
func hbmAddr(row int) hbm.Address {
	return hbm.Address{Row: row}
}
