// Fleetmonitor: drive a trained Cordial pipeline in streaming mode, the way
// a production reliability service would — error events arrive in time
// order across the whole fleet, per-bank sessions accumulate context, and
// mitigation decisions (row sparing, bank sparing) are emitted the moment
// the pipeline has enough evidence.
package main

import (
	"fmt"
	"log"
	"sort"

	"cordial"
)

func main() {
	// Train on one simulated month...
	trainSpec := cordial.DefaultFleetSpec()
	trainSpec.UERBanks = 200
	trainSpec.BenignBanks = 500
	trainSpec.Seed = 1
	trainFleet, err := cordial.Simulate(trainSpec)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := cordial.Train(cordial.RandomForest, trainFleet.Faults)
	if err != nil {
		log.Fatal(err)
	}

	// ...then monitor a fresh month, live.
	liveSpec := trainSpec
	liveSpec.UERBanks = 40
	liveSpec.BenignBanks = 100
	liveSpec.Seed = 2
	live, err := cordial.Simulate(liveSpec)
	if err != nil {
		log.Fatal(err)
	}

	strategy := cordial.NewStrategy(pipe, cordial.DefaultGeometry)
	sessions := make(map[uint64]cordial.Session)

	var bankSpares, rowSpares, decisions int
	fmt.Println("streaming fleet events through Cordial...")
	for i := 0; i < live.Log.Len(); i++ {
		e := live.Log.At(i)
		key := e.Addr.BankKey()
		session, ok := sessions[key]
		if !ok {
			session = strategy.NewSession(cordial.BankOf(e.Addr))
			sessions[key] = session
		}
		d := session.OnEvent(e)
		switch {
		case d.SpareBank:
			bankSpares++
			decisions++
			fmt.Printf("%s  bank %s: scattered pattern -> BANK SPARE\n",
				e.Time.Format("Jan 02 15:04"), cordial.BankOf(e.Addr))
		case len(d.IsolateRows) > 0:
			rowSpares += len(d.IsolateRows)
			decisions++
			if decisions <= 20 {
				rows := d.IsolateRows
				if len(rows) > 8 {
					rows = rows[:8]
				}
				fmt.Printf("%s  bank %s: aggregation pattern -> row-spare %v (+%d more)\n",
					e.Time.Format("Jan 02 15:04"), cordial.BankOf(e.Addr),
					rows, len(d.IsolateRows)-len(rows))
			}
		}
	}

	fmt.Printf("\nmonitored %d events across %d error banks\n", live.Log.Len(), len(sessions))
	fmt.Printf("decisions: %d (bank spares: %d, rows isolated: %d)\n",
		decisions, bankSpares, rowSpares)

	// How well did the live decisions anticipate the month's failures?
	res, err := cordial.Evaluate(pipe, live.Faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolation coverage of the live month: %.1f%% of UER rows isolated before failing\n",
		res.ICR.Rate()*100)

	// Largest banks by event volume, for the on-call engineer.
	type bankLoad struct {
		key uint64
		n   int
	}
	var loads []bankLoad
	for key, events := range live.Log.GroupByBank() {
		loads = append(loads, bankLoad{key, len(events)})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].n > loads[j].n })
	fmt.Println("\nnoisiest banks this month:")
	for i := 0; i < 5 && i < len(loads); i++ {
		fmt.Printf("  %3d events\n", loads[i].n)
	}
}
