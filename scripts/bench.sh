#!/bin/sh
# Runs the mltree training/inference benchmarks and records ns/op in
# BENCH_mltree.json (with Go/CPU/GOMAXPROCS metadata) so performance
# changes leave a checked-in paper trail. BenchmarkTrainPipeline is the
# headline end-to-end number; the internal/mltree micro-benches isolate the
# per-model fit cost and PredictBatch covers batch inference.
#
# A second pass runs the long-session benchmarks (per-event session cost
# over 1k/10k-event histories, plus the full engine ingest path) into
# BENCH_stream.json, recording both ns/op and the ns/event metric — the
# flatness of ns/event between the 1k and 10k histories is the O(1)
# per-event claim of the incremental feature state.
#
# A fourth pass records the model-lifecycle costs in BENCH_retrain.json:
# BenchmarkModelSwap times the atomic hot-swap pause (the window every
# shard's intake is held while the swap record is journaled) and reports
# its p99 as p99-pause-ns; BenchmarkShadowOverhead/off vs /on is the
# per-event ingest cost without and with a live candidate shadow twin.
#
# A third pass records the binary ingest path in BENCH_ingest.json:
# BenchmarkWireFrameDecode is the headline steady-state decode number
# (events/sec, ns/event, and — via -benchmem — allocs/op, which must be 0),
# BenchmarkAppendBatch isolates WAL group-commit throughput per sync
# policy, and BenchmarkBinaryIngest is the end-to-end decode→ingest path.
#
# Usage: scripts/bench.sh [benchtime]   (default 20x)
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-20x}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkTrainPipeline$|BenchmarkForestFit|BenchmarkHistGBDTFit|BenchmarkPredictBatch' \
    -benchtime "$benchtime" . | tee "$tmp"
go test -run '^$' \
    -bench 'BenchmarkForestFit$|BenchmarkGBDTFit$|BenchmarkHistGBDTFit$|BenchmarkTreeFit$' \
    -benchtime "$benchtime" ./internal/mltree/ | tee -a "$tmp"

awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v maxprocs="$(go env GOMAXPROCS 2>/dev/null || echo 0)" \
    -v nproc="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
    -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    key = pkg "." name
    ns[key] = $3
    order[++n] = key
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %d,\n", nproc
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"ns_per_op\": {\n"
    for (i = 1; i <= n; i++)
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" > BENCH_mltree.json

echo "wrote BENCH_mltree.json"

go test -run '^$' \
    -bench 'BenchmarkSessionOnEvent|BenchmarkStreamIngestLongSession' \
    -benchtime "$benchtime" . | tee "$tmp"

awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v maxprocs="$(go env GOMAXPROCS 2>/dev/null || echo 0)" \
    -v nproc="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
    -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    key = pkg "." name
    ns[key] = $3
    for (f = 4; f < NF; f++)
        if ($(f + 1) == "ns/event") nsev[key] = $f
    order[++n] = key
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %d,\n", nproc
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"ns_per_op\": {\n"
    for (i = 1; i <= n; i++)
        printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n ? "," : "")
    printf "  },\n"
    printf "  \"ns_per_event\": {\n"
    for (i = 1; i <= n; i++)
        printf "    \"%s\": %s%s\n", order[i], nsev[order[i]], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$tmp" > BENCH_stream.json

echo "wrote BENCH_stream.json"

go test -run '^$' \
    -bench 'BenchmarkWireFrameDecode$' \
    -benchtime "$benchtime" -benchmem ./internal/mcelog/ | tee "$tmp"
go test -run '^$' \
    -bench 'BenchmarkAppendBatch$' \
    -benchtime "$benchtime" -benchmem ./internal/wal/ | tee -a "$tmp"
go test -run '^$' \
    -bench 'BenchmarkBinaryIngest$' \
    -benchtime "$benchtime" -benchmem . | tee -a "$tmp"

# -benchmem shifts the column layout, so the metrics are parsed by their
# unit tags rather than by position. Every benchmark keeps whatever subset
# of the known units it reports.
awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v maxprocs="$(go env GOMAXPROCS 2>/dev/null || echo 0)" \
    -v nproc="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
    -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    key = pkg "." name
    order[++n] = key
    for (f = 2; f < NF; f++) {
        u = $(f + 1)
        if (u ~ /^(ns\/op|events\/sec|ns\/event|records\/sec|ns\/record|B\/op|allocs\/op)$/)
            m[key "|" u] = $f
    }
}
END {
    nu = split("ns/op events/sec ns/event records/sec ns/record B/op allocs/op", units, " ")
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %d,\n", nproc
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        key = order[i]
        printf "    \"%s\": {", key
        first = 1
        for (j = 1; j <= nu; j++) {
            u = units[j]
            if ((key "|" u) in m) {
                printf "%s\"%s\": %s", (first ? "" : ", "), u, m[key "|" u]
                first = 0
            }
        }
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$tmp" > BENCH_ingest.json

echo "wrote BENCH_ingest.json"

go test -run '^$' \
    -bench 'BenchmarkModelSwap$|BenchmarkShadowOverhead' \
    -benchtime "$benchtime" ./internal/stream/ | tee "$tmp"

# Unit-tagged parsing again: ModelSwap carries p99-pause-ns alongside
# ns/op, the ShadowOverhead sub-benchmarks carry ns/event.
awk \
    -v go_version="$(go version | awk '{print $3}')" \
    -v maxprocs="$(go env GOMAXPROCS 2>/dev/null || echo 0)" \
    -v nproc="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)" \
    -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    key = pkg "." name
    order[++n] = key
    for (f = 2; f < NF; f++) {
        u = $(f + 1)
        if (u ~ /^(ns\/op|ns\/event|p99-pause-ns)$/)
            m[key "|" u] = $f
    }
}
END {
    nu = split("ns/op ns/event p99-pause-ns", units, " ")
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"cores\": %d,\n", nproc
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        key = order[i]
        printf "    \"%s\": {", key
        first = 1
        for (j = 1; j <= nu; j++) {
            u = units[j]
            if ((key "|" u) in m) {
                printf "%s\"%s\": %s", (first ? "" : ", "), u, m[key "|" u]
                first = 0
            }
        }
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$tmp" > BENCH_retrain.json

echo "wrote BENCH_retrain.json"
