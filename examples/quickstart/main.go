// Quickstart: simulate an HBM fleet, train Cordial, and compare it against
// the industrial neighbor-rows baseline — the paper's headline result
// (Table IV) in ~40 lines of library use.
package main

import (
	"fmt"
	"log"

	"cordial"
)

func main() {
	// 1. Simulate a fleet-scale error log with ground truth (stands in for
	//    the paper's proprietary BMC dataset).
	spec := cordial.DefaultFleetSpec()
	spec.UERBanks = 200
	spec.BenignBanks = 800
	spec.Seed = 42
	fleet, err := cordial.Simulate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d error events across %d faulty banks\n",
		fleet.Log.Len(), len(fleet.Faults))

	// 2. Split 70/30 at bank granularity, as in the paper.
	train, test, err := cordial.Split(fleet.Faults, 7, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train Cordial with the Random Forest backend (the paper's best).
	pipe, err := cordial.Train(cordial.RandomForest, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained Cordial-RF on %d banks (calibrated block threshold %.2f)\n",
		len(train), pipe.Config().Threshold)

	// 4. Evaluate pattern classification (Table III).
	pat, err := cordial.EvaluatePattern(pipe, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern classification: weighted P=%.3f R=%.3f F1=%.3f\n",
		pat.Weighted.Precision, pat.Weighted.Recall, pat.Weighted.F1)

	// 5. Evaluate cross-row prediction and isolation coverage (Table IV),
	//    against the neighbor-rows baseline.
	res, err := cordial.Evaluate(pipe, test)
	if err != nil {
		log.Fatal(err)
	}
	base, err := cordial.EvaluateStrategy(
		cordial.NeighborRowsBaseline(cordial.DefaultGeometry, pipe.Config().Block),
		test, pipe.Config().Block)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s  %9s  %6s  %8s  %6s\n", "method", "precision", "recall", "F1 score", "ICR")
	for _, r := range []*cordial.PredictionEval{base, res} {
		fmt.Printf("%-14s  %9.3f  %6.3f  %8.3f  %5.1f%%\n",
			r.Name, r.Block.Precision, r.Block.Recall, r.Block.F1, r.ICR.Rate()*100)
	}
	fmt.Printf("\nCordial improves F1 by %.1f%% and ICR by %.1f%% over the baseline\n",
		(res.Block.F1/base.Block.F1-1)*100, (res.ICR.Rate()/base.ICR.Rate()-1)*100)
	if auc, ok := res.BlockAUC(); ok {
		fmt.Printf("threshold-free block ranking quality (ROC AUC): %.3f\n", auc)
	}
}
