package mltree

import (
	"fmt"
	"math"
	"sort"

	"cordial/internal/xrand"
)

// HistGBDTConfig configures the LightGBM-style histogram gradient booster.
type HistGBDTConfig struct {
	// Rounds is the number of boosting rounds per class (default 100).
	Rounds int
	// LearningRate is the shrinkage applied to every tree (default 0.1).
	LearningRate float64
	// MaxLeaves bounds leaf-wise growth (default 31).
	MaxLeaves int
	// MaxBins is the histogram resolution per feature (default 64).
	MaxBins int
	// MinSamplesLeaf is the minimum samples per leaf (default 5).
	MinSamplesLeaf int
	// Lambda is the L2 regularisation on leaf values (default 1).
	Lambda float64
	// MinChildWeight is the minimum hessian sum per child (default 1e-3).
	MinChildWeight float64
	// TopRate is the GOSS large-gradient keep fraction (default 0.2).
	// Set TopRate+OtherRate ≥ 1 to disable GOSS.
	TopRate float64
	// OtherRate is the GOSS small-gradient sample fraction (default 0.1).
	OtherRate float64
	// PositiveWeight scales the gradient/hessian of positive samples to
	// counter class imbalance (default 1; like scale_pos_weight).
	PositiveWeight float64
	// EarlyStopRounds stops boosting when the held-out log-loss has not
	// improved for this many rounds (0 disables). A 20% validation split
	// is carved from the training data.
	EarlyStopRounds int
	// Seed drives GOSS sampling and the early-stop split.
	Seed uint64
}

func (c HistGBDTConfig) withDefaults() HistGBDTConfig {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxLeaves <= 1 {
		c.MaxLeaves = 31
	}
	if c.MaxBins <= 1 {
		c.MaxBins = 64
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 5
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1e-3
	}
	if c.TopRate <= 0 {
		c.TopRate = 0.2
	}
	if c.OtherRate <= 0 {
		c.OtherRate = 0.1
	}
	if c.PositiveWeight <= 0 {
		c.PositiveWeight = 1
	}
	if c.EarlyStopRounds < 0 {
		c.EarlyStopRounds = 0
	}
	return c
}

// binner maps feature values to histogram bins via per-feature quantile
// boundaries. Upper[f][b] is the inclusive upper value of bin b; the last
// bin is unbounded.
type binner struct {
	Upper [][]float64 `json:"upper"`
}

// newBinner computes quantile-spaced bin boundaries from the training data.
func newBinner(features [][]float64, maxBins int) *binner {
	numFeatures := len(features[0])
	b := &binner{Upper: make([][]float64, numFeatures)}
	vals := make([]float64, len(features))
	for f := 0; f < numFeatures; f++ {
		for i, row := range features {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		// Distinct quantile cut points. A cut equal to the feature's
		// maximum would leave the last bin empty (and a constant feature
		// needs no cuts at all), so cuts stay strictly below the max.
		maxVal := vals[len(vals)-1]
		var cuts []float64
		for k := 1; k < maxBins; k++ {
			v := vals[k*(len(vals)-1)/maxBins]
			if v >= maxVal {
				continue
			}
			if len(cuts) == 0 || v > cuts[len(cuts)-1] {
				cuts = append(cuts, v)
			}
		}
		b.Upper[f] = cuts
	}
	return b
}

// bin returns the bin index of value v for feature f.
func (b *binner) bin(f int, v float64) int {
	cuts := b.Upper[f]
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// numBins returns the bin count for feature f (len(cuts)+1).
func (b *binner) numBins(f int) int { return len(b.Upper[f]) + 1 }

// threshold returns the split value for "bin ≤ b": the upper boundary of b.
func (b *binner) threshold(f, bin int) float64 { return b.Upper[f][bin] }

// HistGBDT is a LightGBM-style gradient booster: per-feature histogram
// binning, leaf-wise (best-first) tree growth bounded by MaxLeaves, and
// Gradient-based One-Side Sampling (GOSS). Loss and multi-class handling
// match GBDT (logistic, one-vs-rest).
type HistGBDT struct {
	Config   HistGBDTConfig
	classes  []int
	boosters []*booster
}

// NewHistGBDT returns an unfitted histogram booster.
func NewHistGBDT(cfg HistGBDTConfig) *HistGBDT {
	return &HistGBDT{Config: cfg.withDefaults()}
}

var _ Classifier = (*HistGBDT)(nil)

// Classes returns the labels seen during Fit.
func (h *HistGBDT) Classes() []int { return h.classes }

// NumTrees returns the total tree count across all arms.
func (h *HistGBDT) NumTrees() int {
	n := 0
	for _, b := range h.boosters {
		n += len(b.Trees)
	}
	return n
}

// Fit trains one boosting chain per class (a single chain for binary).
func (h *HistGBDT) Fit(ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	h.classes = ds.Classes()
	if len(h.classes) < 2 {
		return fmt.Errorf("mltree: HistGBDT needs ≥2 classes, got %d", len(h.classes))
	}
	rng := xrand.New(h.Config.Seed)
	bins := newBinner(ds.Features, h.Config.MaxBins)

	// Pre-bin the whole matrix once.
	binned := make([][]uint16, ds.NumSamples())
	for i, row := range ds.Features {
		br := make([]uint16, len(row))
		for f, v := range row {
			br[f] = uint16(bins.bin(f, v))
		}
		binned[i] = br
	}

	arms := len(h.classes)
	if arms == 2 {
		arms = 1
	}
	h.boosters = make([]*booster, arms)
	for a := 0; a < arms; a++ {
		positive := h.classes[a]
		if len(h.classes) == 2 {
			positive = h.classes[1]
		}
		y := make([]float64, ds.NumSamples())
		for i, l := range ds.Labels {
			if l == positive {
				y[i] = 1
			}
		}
		b, err := h.fitBinary(ds, binned, bins, y, rng.Split())
		if err != nil {
			return fmt.Errorf("mltree: HistGBDT arm %d: %w", a, err)
		}
		h.boosters[a] = b
	}
	return nil
}

func (h *HistGBDT) fitBinary(ds *Dataset, binned [][]uint16, bins *binner, y []float64, rng *xrand.RNG) (*booster, error) {
	cfg := h.Config
	n := ds.NumSamples()

	// Optional early-stopping validation split.
	trainIdx := make([]int, 0, n)
	var valIdx []int
	if cfg.EarlyStopRounds > 0 && n >= 20 {
		perm := rng.Perm(n)
		cut := n / 5
		valIdx = perm[:cut]
		trainIdx = append(trainIdx, perm[cut:]...)
	} else {
		for i := 0; i < n; i++ {
			trainIdx = append(trainIdx, i)
		}
	}

	pos := 0.0
	for _, i := range trainIdx {
		pos += y[i]
	}
	p0 := (pos + 1) / (float64(len(trainIdx)) + 2)
	b := &booster{Bias: math.Log(p0 / (1 - p0)), LR: cfg.LearningRate}

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = b.Bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	bestLoss := math.Inf(1)
	bestLen := 0
	sinceBest := 0

	for round := 0; round < cfg.Rounds; round++ {
		for _, i := range trainIdx {
			p := sigmoid(margin[i])
			w := 1.0
			if y[i] == 1 {
				w = cfg.PositiveWeight
			}
			grad[i] = w * (p - y[i])
			hess[i] = w * p * (1 - p)
		}
		samples, scale := h.goss(grad, trainIdx, rng)
		g := &histGrower{
			cfg:    cfg,
			bins:   bins,
			binned: binned,
			grad:   grad,
			hess:   hess,
			scale:  scale,
		}
		root := g.grow(samples)
		b.Trees = append(b.Trees, root)
		for i := 0; i < n; i++ {
			margin[i] += cfg.LearningRate * root.navigate(ds.Features[i]).Value
		}

		if len(valIdx) > 0 {
			loss := 0.0
			for _, i := range valIdx {
				loss += logLoss(y[i], sigmoid(margin[i]))
			}
			loss /= float64(len(valIdx))
			if loss < bestLoss-1e-9 {
				bestLoss = loss
				bestLen = len(b.Trees)
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= cfg.EarlyStopRounds {
					b.Trees = b.Trees[:bestLen]
					break
				}
			}
		}
	}
	return b, nil
}

// goss performs Gradient-based One-Side Sampling over the training indices:
// keep the TopRate fraction with the largest |gradient|, sample OtherRate of
// the rest, and return a per-sample weight multiplier that compensates the
// downsampling.
func (h *HistGBDT) goss(grad []float64, trainIdx []int, rng *xrand.RNG) (samples []int, scale []float64) {
	n := len(trainIdx)
	cfg := h.Config
	scale = make([]float64, len(grad))
	if cfg.TopRate+cfg.OtherRate >= 1 {
		for _, i := range trainIdx {
			scale[i] = 1
		}
		return trainIdx, scale
	}
	order := append([]int(nil), trainIdx...)
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(grad[order[a]]) > math.Abs(grad[order[b]])
	})
	topN := int(cfg.TopRate * float64(n))
	if topN < 1 {
		topN = 1
	}
	restN := int(cfg.OtherRate * float64(n))
	if restN < 1 {
		restN = 1
	}
	if topN+restN > n {
		restN = n - topN
	}
	samples = append(samples, order[:topN]...)
	for _, i := range samples {
		scale[i] = 1
	}
	rest := order[topN:]
	amplify := (1 - cfg.TopRate) / cfg.OtherRate
	if len(rest) > 0 && restN > 0 {
		for _, k := range rng.SampleInts(len(rest), min(restN, len(rest))) {
			i := rest[k]
			samples = append(samples, i)
			scale[i] = amplify
		}
	}
	return samples, scale
}

// histGrower grows one tree leaf-wise over binned features.
type histGrower struct {
	cfg    HistGBDTConfig
	bins   *binner
	binned [][]uint16
	grad   []float64
	hess   []float64
	scale  []float64
}

// leafState tracks a grown leaf and its best candidate split.
type leafState struct {
	node    *treeNode
	samples []int
	sumG    float64
	sumH    float64

	bestGain float64
	bestFeat int
	bestBin  int
}

func (g *histGrower) grow(samples []int) *treeNode {
	root := &treeNode{}
	rootLeaf := g.newLeaf(root, samples)
	leaves := []*leafState{rootLeaf}

	for len(leaves) < g.cfg.MaxLeaves {
		// Pick the splittable leaf with the largest gain.
		var best *leafState
		for _, l := range leaves {
			if l.bestGain > 0 && (best == nil || l.bestGain > best.bestGain) {
				best = l
			}
		}
		if best == nil {
			break
		}
		left, right := g.split(best)
		if left == nil {
			best.bestGain = 0 // split fell through; stop considering it
			continue
		}
		// Replace the split leaf with its children.
		for i, l := range leaves {
			if l == best {
				leaves[i] = left
				leaves = append(leaves, right)
				break
			}
		}
	}
	// Finalise leaf values.
	for _, l := range leaves {
		l.node.Left, l.node.Right = nil, nil
		l.node.Value = -l.sumG / (l.sumH + g.cfg.Lambda)
	}
	return root
}

func (g *histGrower) newLeaf(node *treeNode, samples []int) *leafState {
	l := &leafState{node: node, samples: samples}
	for _, i := range samples {
		l.sumG += g.grad[i] * g.scale[i]
		l.sumH += g.hess[i] * g.scale[i]
	}
	g.findBestSplit(l)
	return l
}

// findBestSplit scans per-feature histograms for the best bin split.
func (g *histGrower) findBestSplit(l *leafState) {
	l.bestGain = 0
	if len(l.samples) < 2*g.cfg.MinSamplesLeaf {
		return
	}
	numFeatures := len(g.binned[0])
	score := func(gs, hs float64) float64 { return gs * gs / (hs + g.cfg.Lambda) }
	parent := score(l.sumG, l.sumH)

	for f := 0; f < numFeatures; f++ {
		nb := g.bins.numBins(f)
		if nb < 2 {
			continue
		}
		histG := make([]float64, nb)
		histH := make([]float64, nb)
		histN := make([]int, nb)
		for _, i := range l.samples {
			b := g.binned[i][f]
			w := g.scale[i]
			histG[b] += g.grad[i] * w
			histH[b] += g.hess[i] * w
			histN[b]++
		}
		var gl, hl float64
		var nl int
		for b := 0; b < nb-1; b++ {
			gl += histG[b]
			hl += histH[b]
			nl += histN[b]
			if nl < g.cfg.MinSamplesLeaf || len(l.samples)-nl < g.cfg.MinSamplesLeaf {
				continue
			}
			gr, hr := l.sumG-gl, l.sumH-hl
			if hl < g.cfg.MinChildWeight || hr < g.cfg.MinChildWeight {
				continue
			}
			gain := 0.5 * (score(gl, hl) + score(gr, hr) - parent)
			if gain > l.bestGain {
				l.bestGain = gain
				l.bestFeat = f
				l.bestBin = b
			}
		}
	}
}

// split applies a leaf's best split, converting it into an internal node and
// returning the two child leaves. It returns nil children when the split
// degenerates (e.g. all samples on one side).
func (g *histGrower) split(l *leafState) (left, right *leafState) {
	var ls, rs []int
	for _, i := range l.samples {
		if int(g.binned[i][l.bestFeat]) <= l.bestBin {
			ls = append(ls, i)
		} else {
			rs = append(rs, i)
		}
	}
	if len(ls) == 0 || len(rs) == 0 {
		return nil, nil
	}
	l.node.Feature = l.bestFeat
	l.node.Threshold = g.bins.threshold(l.bestFeat, l.bestBin)
	l.node.Left = &treeNode{}
	l.node.Right = &treeNode{}
	return g.newLeaf(l.node.Left, ls), g.newLeaf(l.node.Right, rs)
}

// PredictProba returns class probabilities (see GBDT.PredictProba).
func (h *HistGBDT) PredictProba(x []float64) []float64 {
	out := make([]float64, len(h.classes))
	if len(h.boosters) == 0 {
		return out
	}
	if len(h.classes) == 2 {
		p := sigmoid(h.boosters[0].raw(x))
		out[0] = 1 - p
		out[1] = p
		return out
	}
	total := 0.0
	for a, b := range h.boosters {
		p := sigmoid(b.raw(x))
		out[a] = p
		total += p
	}
	if total > 0 {
		for a := range out {
			out[a] /= total
		}
	} else {
		for a := range out {
			out[a] = 1 / float64(len(out))
		}
	}
	return out
}
