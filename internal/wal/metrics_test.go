package wal

import (
	"strings"
	"testing"

	"cordial/internal/obs"
)

// TestWALMetrics: the journal's instruments count appends, fsyncs and
// their failures, and the gauges track segments / next LSN — all scraped
// through the registry's exposition output.
func TestWALMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ffs := NewFaultFS(OSFS)
	w, err := Open(t.TempDir(), Options{FS: ffs, Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	ffs.FailSyncAfter(0)
	if _, err := w.Append([]byte("doomed")); err == nil {
		t.Fatal("append under failing fsync succeeded")
	}
	ffs.FailSyncAfter(-1)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cordial_wal_appends_total 3",
		"cordial_wal_append_errors_total 1",
		"cordial_wal_fsync_errors_total 1",
		"cordial_wal_segments 1",
		"cordial_wal_next_lsn 4",
		"cordial_wal_append_seconds_count 4", // durations cover failures too
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// The fsync histogram observed at least the 3 successful per-append
	// syncs plus the failed one (header sync on openSegment also counts).
	if strings.Contains(out, "cordial_wal_fsyncs_total 0") {
		t.Error("no fsyncs counted under SyncAlways")
	}
}

// TestWALMetricsDisabled: a journal without a registry runs with nil
// instruments end to end.
func TestWALMetricsDisabled(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
