// Package clitest builds the repository's command binaries and exercises
// them end to end: generate → study → train → predict → repro.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAll compiles every command into a temp dir once per test binary.
func buildAll(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, cmd := range []string{"cordial-gen", "cordial-train", "cordial-predict", "cordial-repro", "cordial-study", "cordial-serve", "cordial-control", "cordial-router"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "cordial/cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, args[0]), args[1:]...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildAll(t)
	work := t.TempDir()
	logPath := filepath.Join(work, "fleet.mcelog")
	truthPath := filepath.Join(work, "truth.json")
	modelPath := filepath.Join(work, "models.json")

	// Generate a small fleet.
	out := run(t, bin, "cordial-gen", "-seed", "5", "-uer-banks", "80",
		"-benign-banks", "150", "-log", logPath, "-truth", truthPath)
	if !strings.Contains(out, "80 faulty banks") {
		t.Fatalf("gen output: %s", out)
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Fatal(err)
	}

	// Study the log.
	out = run(t, bin, "cordial-study", "-log", logPath)
	for _, want := range []string{"sudden-UER ratios", "Figure 4", "noisiest banks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}

	// Train on the ground truth.
	out = run(t, bin, "cordial-train", "-truth", truthPath, "-model", "rf",
		"-trees", "20", "-out", modelPath)
	if !strings.Contains(out, "trained Random Forest on 80 banks") {
		t.Fatalf("train output: %s", out)
	}

	// Predict over the log with the trained models.
	out = run(t, bin, "cordial-predict", "-models", modelPath, "-log", logPath)
	if !strings.Contains(out, "classified 80 of") {
		t.Fatalf("predict output: %s", out)
	}
	if !strings.Contains(out, "action=row-spare") || !strings.Contains(out, "action=bank-spare") {
		t.Fatalf("predict output missing actions:\n%s", out)
	}
}

func TestCLIReproQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildAll(t)
	out := run(t, bin, "cordial-repro", "-scale", "quick", "-exp", "fig4")
	if !strings.Contains(out, "peak threshold: 128 rows") {
		t.Fatalf("fig4 output: %s", out)
	}
	out = run(t, bin, "cordial-repro", "-scale", "quick", "-exp", "table1")
	if !strings.Contains(out, "Predictable Ratio") {
		t.Fatalf("table1 output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildAll(t)
	// Unknown experiment fails with a helpful message.
	cmd := exec.Command(filepath.Join(bin, "cordial-repro"), "-exp", "bogus", "-scale", "quick")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bogus experiment succeeded: %s", out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Fatalf("error output: %s", out)
	}
	// Missing log file fails cleanly.
	cmd = exec.Command(filepath.Join(bin, "cordial-study"), "-log", "/nonexistent.mcelog")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("missing log accepted: %s", out)
	}
}

func TestCLIStreamFormatRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildAll(t)
	work := t.TempDir()
	logPath := filepath.Join(work, "fleet.stream")
	out := run(t, bin, "cordial-gen", "-seed", "6", "-uer-banks", "30",
		"-benign-banks", "50", "-log", logPath, "-format", "stream", "-truth", "")
	if !strings.Contains(out, "30 faulty banks") {
		t.Fatalf("gen output: %s", out)
	}
	out = run(t, bin, "cordial-study", "-log", logPath, "-format", "stream")
	if !strings.Contains(out, "sudden-UER ratios") {
		t.Fatalf("study output: %s", out)
	}
}
