package mcelog

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"cordial/internal/ecc"
	"cordial/internal/hbm"
)

// jsonEvent is the interchange shape for one event in the JSONL codec.
// The bits field is the intra-word error pattern; it is omitted when zero
// so logs from producers without syndrome detail keep their shape.
type jsonEvent struct {
	Time  time.Time `json:"time"`
	Addr  string    `json:"addr"`
	Class string    `json:"class"`
	Bits  uint16    `json:"bits,omitempty"`
}

// WriteJSONL writes the log as JSON Lines: one event object per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range l.events {
		je := jsonEvent{Time: e.Time.UTC(), Addr: e.Addr.String(), Class: e.Class.String(), Bits: uint16(e.Bits)}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("mcelog: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// MarshalJSONEvent renders one event in the per-line shape WriteJSONL
// emits (no trailing newline). It is ParseJSONEvent's inverse — used by
// forwarders that received an event in another codec and must re-encode
// it for a JSONL-only peer.
func MarshalJSONEvent(ev Event) ([]byte, error) {
	return json.Marshal(jsonEvent{Time: ev.Time.UTC(), Addr: ev.Addr.String(), Class: ev.Class.String(), Bits: uint16(ev.Bits)})
}

// ParseJSONEvent parses one JSONL-encoded event (the per-line shape
// WriteJSONL emits). Unlike ReadJSONL it is line-granular, so tolerant
// ingestors can reject a malformed line and keep the rest of the batch.
func ParseJSONEvent(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, fmt.Errorf("mcelog: decoding event: %w", err)
	}
	addr, err := hbm.ParseAddress(je.Addr)
	if err != nil {
		return Event{}, fmt.Errorf("mcelog: %w", err)
	}
	class, err := ecc.ParseClass(je.Class)
	if err != nil {
		return Event{}, fmt.Errorf("mcelog: %w", err)
	}
	if err := ValidateTime(je.Time); err != nil {
		return Event{}, err
	}
	return Event{Time: je.Time, Addr: addr, Class: class, Bits: ErrBits(je.Bits)}, nil
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	log := &Log{}
	for i := 0; ; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if errors.Is(err, io.EOF) {
				return log, nil
			}
			return nil, fmt.Errorf("mcelog: decoding line %d: %w", i, err)
		}
		addr, err := hbm.ParseAddress(je.Addr)
		if err != nil {
			return nil, fmt.Errorf("mcelog: line %d: %w", i, err)
		}
		class, err := ecc.ParseClass(je.Class)
		if err != nil {
			return nil, fmt.Errorf("mcelog: line %d: %w", i, err)
		}
		log.Append(Event{Time: je.Time, Addr: addr, Class: class, Bits: ErrBits(je.Bits)})
	}
}

// Binary format:
//
//	header:  magic "MCEL" | uint16 version | uint32 event count
//	record:  int64 unix-nanos | uint64 packed addr | uint8 class | uint16 error bits   (×count)
//	trailer: uint32 CRC-32 (IEEE) over all record bytes
//
// All integers are little-endian. The trailer detects truncation and
// corruption; readers must verify it before trusting the events. Version
// 1 files, whose records lack the trailing error-bit field, still read
// (with Bits zero); writers always emit version 2.
const (
	binaryMagic     = "MCEL"
	binaryVersion   = 2
	binaryVersionV1 = 1
	recordSize      = 8 + 8 + 1 + 2
	recordSizeV1    = 8 + 8 + 1
)

// WriteBinary writes the log in the compact binary format.
func (l *Log) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("mcelog: writing magic: %w", err)
	}
	var head [6]byte
	binary.LittleEndian.PutUint16(head[0:2], binaryVersion)
	binary.LittleEndian.PutUint32(head[2:6], uint32(len(l.events)))
	if _, err := bw.Write(head[:]); err != nil {
		return fmt.Errorf("mcelog: writing header: %w", err)
	}
	crc := crc32.NewIEEE()
	var rec [recordSize]byte
	for _, e := range l.events {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.Time.UnixNano()))
		binary.LittleEndian.PutUint64(rec[8:16], e.Addr.Pack())
		rec[16] = byte(e.Class)
		binary.LittleEndian.PutUint16(rec[17:19], uint16(e.Bits))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("mcelog: writing record: %w", err)
		}
		crc.Write(rec[:]) // hash.Hash.Write never errors
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("mcelog: writing checksum: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format, verifying the checksum.
func ReadBinary(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+6)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("mcelog: reading header: %w", err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("mcelog: bad magic %q", head[:4])
	}
	recSize := recordSize
	switch v := binary.LittleEndian.Uint16(head[4:6]); v {
	case binaryVersion:
	case binaryVersionV1:
		recSize = recordSizeV1
	default:
		return nil, fmt.Errorf("mcelog: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(head[6:10])
	// The count is untrusted input: preallocate only up to a sane bound and
	// let append grow beyond it, so a corrupt header cannot OOM the reader.
	prealloc := int(count)
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	log := NewLog(prealloc)
	crc := crc32.NewIEEE()
	rec := make([]byte, recSize)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("mcelog: reading record %d of %d: %w", i, count, err)
		}
		crc.Write(rec)
		class := ecc.Class(rec[16])
		if class != ecc.ClassCE && class != ecc.ClassUEO && class != ecc.ClassUER {
			return nil, fmt.Errorf("mcelog: record %d has invalid class byte %d", i, rec[16])
		}
		// Checked unpack: a packed address with bits outside the layout
		// would silently alias onto a wrong (but valid-looking) address.
		addr, err := hbm.UnpackChecked(binary.LittleEndian.Uint64(rec[8:16]))
		if err != nil {
			return nil, fmt.Errorf("mcelog: record %d: %w", i, err)
		}
		var bits ErrBits
		if recSize == recordSize {
			bits = ErrBits(binary.LittleEndian.Uint16(rec[17:19]))
		}
		log.Append(Event{
			Time:  time.Unix(0, int64(binary.LittleEndian.Uint64(rec[0:8]))).UTC(),
			Addr:  addr,
			Class: class,
			Bits:  bits,
		})
	}
	tail := make([]byte, 4)
	if _, err := io.ReadFull(br, tail); err != nil {
		return nil, fmt.Errorf("mcelog: reading checksum: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("mcelog: checksum mismatch: computed %#x, stored %#x", got, want)
	}
	return log, nil
}
