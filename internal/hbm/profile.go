package hbm

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Topology profiles.
//
// The packed-address encoding, the micro-level hierarchy and the geometry
// used to be one hard-coded HBM2E layout. A Profile bundles the three into
// a named, registered unit: the fleet Geometry, the bit Layout of the
// packed address, and the ordered hierarchy Levels (DDR organisations add
// rank/device and place the channel above the module; HBM stacks do the
// reverse). Exactly one profile is active per process — the encoding of a
// packed address is meaningless without it — and everything that packs,
// unpacks, truncates or renders addresses consults the active profile.

// field enumerates the address fields a layout can allocate bits to, in
// struct order. Hierarchy order is a per-profile property (Layout.order);
// field values are stable identifiers, not positions.
type field int

const (
	fieldNode field = iota
	fieldNPU
	fieldHBM
	fieldSID
	fieldChannel
	fieldPseudoChannel
	fieldRank
	fieldDevice
	fieldBankGroup
	fieldBank
	fieldRow
	fieldColumn
	numFields
)

var fieldNames = [numFields]string{
	"node", "npu", "hbm", "sid", "channel", "pseudo-channel",
	"rank", "device", "bank group", "bank", "row", "column",
}

// levelField maps each hierarchy level to the address field it truncates
// at. The mapping is global; only the ordering of levels varies by profile.
var levelField = map[Level]field{
	LevelNPU:           fieldNPU,
	LevelHBM:           fieldHBM,
	LevelSID:           fieldSID,
	LevelChannel:       fieldChannel,
	LevelPseudoChannel: fieldPseudoChannel,
	LevelRank:          fieldRank,
	LevelDevice:        fieldDevice,
	LevelBankGroup:     fieldBankGroup,
	LevelBank:          fieldBank,
	LevelRow:           fieldRow,
}

// Layout is the bit allocation of the packed uint64 address: which fields
// exist, in what hierarchy order (coarsest first, so coarser fields land in
// higher bits), and how many bits each gets. A zero-width field is carried
// in the Address struct but occupies no bits — packing a nonzero value into
// it is an encoding-range error under PackChecked and silent loss under
// Pack, which is why trust boundaries must use the checked form.
type Layout struct {
	order [numFields]field // hierarchy order, coarsest first; always all fields
	width [numFields]int   // bits per field, indexed by field
	shift [numFields]uint  // bit position per field, indexed by field
	used  uint64           // mask of bits any field occupies
}

// NewLayout builds a layout from a hierarchy order (coarsest first; must
// mention every field exactly once) and per-field bit widths.
func NewLayout(order []field, width map[field]int) (Layout, error) {
	var l Layout
	if len(order) != int(numFields) {
		return Layout{}, fmt.Errorf("hbm: layout order has %d fields, want %d", len(order), numFields)
	}
	seen := [numFields]bool{}
	for i, f := range order {
		if f < 0 || f >= numFields || seen[f] {
			return Layout{}, fmt.Errorf("hbm: layout order entry %d (%v) invalid or duplicated", i, f)
		}
		seen[f] = true
		l.order[i] = f
	}
	total := 0
	for f, w := range width {
		if w < 0 || w > 32 {
			return Layout{}, fmt.Errorf("hbm: layout width %d for %s out of range [0,32]", w, fieldNames[f])
		}
		l.width[f] = w
		total += w
	}
	if total > 64 {
		return Layout{}, fmt.Errorf("hbm: layout needs %d bits, only 64 available", total)
	}
	// Assign shifts finest-field-first from bit 0 upward.
	shift := uint(0)
	for i := int(numFields) - 1; i >= 0; i-- {
		f := l.order[i]
		l.shift[f] = shift
		shift += uint(l.width[f])
		if w := l.width[f]; w > 0 {
			l.used |= ((uint64(1) << w) - 1) << l.shift[f]
		}
	}
	return l, nil
}

// Bits returns the total number of bits the layout occupies.
func (l Layout) Bits() int {
	n := 0
	for _, w := range l.width {
		n += w
	}
	return n
}

// capacity returns the number of distinct values field f can encode.
func (l Layout) capacity(f field) int { return 1 << l.width[f] }

// fits reports whether the geometry's dimensions all fit the layout.
func (l Layout) fits(g Geometry) error {
	for f := field(0); f < numFields; f++ {
		if dim := g.dim(f); dim > l.capacity(f) {
			return fmt.Errorf("hbm: geometry %s = %d exceeds layout capacity %d (%d bits)",
				fieldNames[f], dim, l.capacity(f), l.width[f])
		}
	}
	return nil
}

// DeriveLayout computes a minimal layout for a geometry: each field gets
// exactly the bits needed to index its dimension, in the given hierarchy
// order. Registered profiles use hand-picked widths with headroom instead;
// this is for ad-hoc geometries in tests and experiments.
func DeriveLayout(g Geometry, order []field) (Layout, error) {
	width := make(map[field]int, numFields)
	for f := field(0); f < numFields; f++ {
		width[f] = bitsFor(g.dim(f))
	}
	return NewLayout(order, width)
}

// bitsFor returns the bits needed to index n distinct values (0 for n<=1).
func bitsFor(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// Profile is a named memory topology: geometry, packed-address layout and
// hierarchy. Profiles are immutable after registration.
type Profile struct {
	// Name is the registry key, e.g. "hbm2e" or "ddr5-dimm".
	Name string
	// Geometry is the fleet's dimensions under this topology.
	Geometry Geometry
	// Layout is the packed-address bit allocation.
	Layout Layout
	// Levels is the full hierarchy, coarsest first, restricted to levels
	// that exist (capacity > 1) under this topology.
	Levels []Level
	// TableLevels are the levels the per-level study tables report.
	TableLevels []Level
	// levelNames overrides Level display names (e.g. NPU → "Socket").
	levelNames map[Level]string
}

// LevelName returns the display name of a level under this profile: DDR
// organisations rename NPU to Socket and HBM to DIMM.
func (p *Profile) LevelName(l Level) string {
	if s, ok := p.levelNames[l]; ok {
		return s
	}
	return l.String()
}

// Validate checks the profile's internal consistency: positive dimensions,
// every dimension within its layout capacity, and a coherent level list.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("hbm: profile has empty name")
	}
	// Validate against the profile's own layout, not the active one: the
	// registry fills before any profile is active.
	if err := p.Geometry.validateDims(); err != nil {
		return fmt.Errorf("hbm: profile %q: %w", p.Name, err)
	}
	if err := p.Layout.fits(p.Geometry); err != nil {
		return fmt.Errorf("hbm: profile %q: %w", p.Name, err)
	}
	for _, l := range p.Levels {
		if _, ok := levelField[l]; !ok {
			return fmt.Errorf("hbm: profile %q lists unknown level %v", p.Name, l)
		}
	}
	for _, l := range p.TableLevels {
		if _, ok := levelField[l]; !ok {
			return fmt.Errorf("hbm: profile %q table lists unknown level %v", p.Name, l)
		}
	}
	return nil
}

// truncateFrom returns the index in the layout order after which fields are
// zeroed when truncating at level l, or -1 if the level has no field here.
func (p *Profile) truncateFrom(l Level) int {
	f, ok := levelField[l]
	if !ok {
		return -1
	}
	for i, of := range p.Layout.order {
		if of == f {
			return i
		}
	}
	return -1
}

// Registry of named profiles. Registration happens at init and (for tests
// and experiments) at runtime; lookup is read-mostly.

var (
	registry = map[string]*Profile{}

	// active is the process-wide profile consulted by Address methods that
	// take no explicit profile. It is never nil after package init.
	active atomic.Pointer[Profile]
)

// RegisterProfile validates and adds a profile to the registry, replacing
// any previous profile of the same name.
func RegisterProfile(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	registry[p.Name] = p
	return nil
}

// ProfileByName looks up a registered profile.
func ProfileByName(name string) (*Profile, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("hbm: unknown topology profile %q (registered: %v)", name, ProfileNames())
	}
	return p, nil
}

// ProfileNames returns the registered profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ActiveProfile returns the process-wide active profile.
func ActiveProfile() *Profile { return active.Load() }

// SetActiveProfile makes the named registered profile active and returns
// it. Packed addresses produced under different profiles are not
// comparable; switch profiles only between workloads, never mid-stream.
func SetActiveProfile(name string) (*Profile, error) {
	p, err := ProfileByName(name)
	if err != nil {
		return nil, err
	}
	active.Store(p)
	return p, nil
}

// ActivateProfile makes an arbitrary (possibly unregistered) profile
// active and returns the previously active one, for deferred restore in
// tests and sequential multi-topology experiments.
func ActivateProfile(p *Profile) *Profile {
	prev := active.Load()
	active.Store(p)
	return prev
}

// hbmOrder is the stack hierarchy: node → NPU → HBM → SID → channel →
// pseudo-channel → bank group → bank → row → column. The rank and device
// fields exist in the struct but have no extent under HBM topologies; they
// sit just above the bank group so zero-width truncation stays coherent.
var hbmOrder = []field{
	fieldNode, fieldNPU, fieldHBM, fieldSID, fieldChannel, fieldPseudoChannel,
	fieldRank, fieldDevice, fieldBankGroup, fieldBank, fieldRow, fieldColumn,
}

// ddrOrder is the DIMM hierarchy: node → socket → channel → DIMM → rank →
// device → bank group → bank → row → column. The NPU field plays the
// socket, the HBM field the DIMM; SID and pseudo-channel have no extent.
var ddrOrder = []field{
	fieldNode, fieldNPU, fieldChannel, fieldHBM, fieldRank, fieldDevice,
	fieldSID, fieldPseudoChannel, fieldBankGroup, fieldBank, fieldRow, fieldColumn,
}

// ddrLevelNames renames the reused fields for DIMM topologies.
var ddrLevelNames = map[Level]string{
	LevelNPU: "Socket",
	LevelHBM: "DIMM",
}

func mustLayout(order []field, width map[field]int) Layout {
	l, err := NewLayout(order, width)
	if err != nil {
		panic(err)
	}
	return l
}

func mustRegister(p *Profile) *Profile {
	if err := RegisterProfile(p); err != nil {
		panic(err)
	}
	return p
}

// HBM2E is the paper's topology (Figure 1) and the default active profile.
// Its layout reproduces the historical fixed constants bit for bit, so
// packed addresses, bank keys and digests are stable across the change to
// profile-derived layouts.
var HBM2E = mustRegister(&Profile{
	Name:     "hbm2e",
	Geometry: DefaultGeometry,
	Layout: mustLayout(hbmOrder, map[field]int{
		fieldNode: 12, fieldNPU: 4, fieldHBM: 2, fieldSID: 1,
		fieldChannel: 3, fieldPseudoChannel: 1, fieldRank: 0, fieldDevice: 0,
		fieldBankGroup: 2, fieldBank: 2, fieldRow: 16, fieldColumn: 8,
	}),
	Levels: []Level{
		LevelNPU, LevelHBM, LevelSID, LevelChannel, LevelPseudoChannel,
		LevelBankGroup, LevelBank, LevelRow,
	},
	TableLevels: []Level{
		LevelNPU, LevelHBM, LevelSID, LevelPseudoChannel,
		LevelBankGroup, LevelBank, LevelRow,
	},
})

// HBM3 widens the stack: 16 channels per SID, 8 bank groups and 64Ki rows
// per bank, per the HBM3 JEDEC organisation.
var HBM3 = mustRegister(&Profile{
	Name: "hbm3",
	Geometry: Geometry{
		Nodes:          128,
		NPUsPerNode:    8,
		HBMsPerNPU:     2,
		SIDsPerHBM:     2,
		ChannelsPerSID: 16,
		PseudoChPerCh:  2,
		BankGroups:     8,
		BanksPerGroup:  4,
		RowsPerBank:    65536,
		ColsPerBank:    128,
	},
	Layout: mustLayout(hbmOrder, map[field]int{
		fieldNode: 12, fieldNPU: 4, fieldHBM: 2, fieldSID: 1,
		fieldChannel: 4, fieldPseudoChannel: 1, fieldRank: 0, fieldDevice: 0,
		fieldBankGroup: 3, fieldBank: 2, fieldRow: 17, fieldColumn: 8,
	}),
	Levels: []Level{
		LevelNPU, LevelHBM, LevelSID, LevelChannel, LevelPseudoChannel,
		LevelBankGroup, LevelBank, LevelRow,
	},
	TableLevels: []Level{
		LevelNPU, LevelHBM, LevelSID, LevelPseudoChannel,
		LevelBankGroup, LevelBank, LevelRow,
	},
})

// ddrLevels is the reported hierarchy for DIMM topologies.
var ddrLevels = []Level{
	LevelNPU, LevelChannel, LevelHBM, LevelRank, LevelDevice,
	LevelBankGroup, LevelBank, LevelRow,
}

// DDR4DIMM models a two-socket DDR4 server fleet: 4 channels per socket,
// 2 DIMMs per channel, 2 ranks per DIMM, 8 x8 devices per rank.
var DDR4DIMM = mustRegister(&Profile{
	Name: "ddr4-dimm",
	Geometry: Geometry{
		Nodes:          128,
		NPUsPerNode:    2, // sockets
		HBMsPerNPU:     2, // DIMMs per channel
		SIDsPerHBM:     1,
		ChannelsPerSID: 4, // channels per socket
		PseudoChPerCh:  1,
		RanksPerModule: 2,
		DevicesPerRank: 8,
		BankGroups:     4,
		BanksPerGroup:  4,
		RowsPerBank:    65536,
		ColsPerBank:    1024,
	},
	Layout: mustLayout(ddrOrder, map[field]int{
		fieldNode: 12, fieldNPU: 1, fieldHBM: 1, fieldSID: 0,
		fieldChannel: 2, fieldPseudoChannel: 0, fieldRank: 1, fieldDevice: 3,
		fieldBankGroup: 2, fieldBank: 2, fieldRow: 16, fieldColumn: 10,
	}),
	Levels:      ddrLevels,
	TableLevels: ddrLevels,
	levelNames:  ddrLevelNames,
})

// DDR5DIMM models a two-socket DDR5 server fleet: 8 channels per socket,
// 8 bank groups, 64Ki rows.
var DDR5DIMM = mustRegister(&Profile{
	Name: "ddr5-dimm",
	Geometry: Geometry{
		Nodes:          128,
		NPUsPerNode:    2, // sockets
		HBMsPerNPU:     2, // DIMMs per channel
		SIDsPerHBM:     1,
		ChannelsPerSID: 8, // channels per socket
		PseudoChPerCh:  1,
		RanksPerModule: 2,
		DevicesPerRank: 8,
		BankGroups:     8,
		BanksPerGroup:  4,
		RowsPerBank:    65536,
		ColsPerBank:    1024,
	},
	Layout: mustLayout(ddrOrder, map[field]int{
		fieldNode: 12, fieldNPU: 1, fieldHBM: 1, fieldSID: 0,
		fieldChannel: 3, fieldPseudoChannel: 0, fieldRank: 1, fieldDevice: 3,
		fieldBankGroup: 3, fieldBank: 2, fieldRow: 16, fieldColumn: 10,
	}),
	Levels:      ddrLevels,
	TableLevels: ddrLevels,
	levelNames:  ddrLevelNames,
})

func init() {
	active.Store(HBM2E)
}
