package core

import (
	"bytes"
	"testing"
	"time"

	"cordial/internal/faultsim"
	"cordial/internal/features"
	"cordial/internal/hbm"
	"cordial/internal/sparing"
	"cordial/internal/trace"
	"cordial/internal/xrand"
)

// testFleet generates a fleet once per test binary run and caches splits.
var fleetCache = map[uint64]*trace.Fleet{}

func testFleet(t testing.TB, seed uint64, uerBanks int) *trace.Fleet {
	t.Helper()
	key := seed<<16 | uint64(uerBanks)
	if f, ok := fleetCache[key]; ok {
		return f
	}
	spec := trace.DefaultSpec(hbm.DefaultGeometry)
	spec.UERBanks = uerBanks
	spec.BenignBanks = 0 // prediction evaluation only needs faulty banks
	spec.Seed = seed
	f, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleetCache[key] = f
	return f
}

// smallParams keeps model fitting fast in tests.
func smallParams() ModelParams {
	return ModelParams{Trees: 30, Depth: 8, Leaves: 15, LearningRate: 0.15}
}

func fitPipeline(t testing.TB, kind ModelKind, train []*faultsim.BankFault) *Pipeline {
	t.Helper()
	cfg := DefaultConfig(kind)
	cfg.Params = smallParams()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Model: ModelKind(99)}); err == nil {
		t.Error("bad model kind accepted")
	}
	cfg := DefaultConfig(RandomForest)
	cfg.Threshold = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("bad threshold accepted")
	}
	cfg = DefaultConfig(RandomForest)
	cfg.Block = features.BlockSpec{WindowRadius: 64, BlockSize: 7}
	if _, err := New(cfg); err == nil {
		t.Error("bad block spec accepted")
	}
}

func TestModelKindStrings(t *testing.T) {
	if RandomForest.String() != "Random Forest" || RandomForest.ShortName() != "RF" {
		t.Error("RF names wrong")
	}
	if XGBoost.ShortName() != "XGB" || LightGBM.ShortName() != "LGBM" {
		t.Error("boosting names wrong")
	}
}

func TestNewModelAllKinds(t *testing.T) {
	for _, kind := range AllModelKinds {
		m, err := NewModel(kind, ModelParams{}, 1)
		if err != nil || m == nil {
			t.Fatalf("NewModel(%v): %v", kind, err)
		}
	}
	if _, err := NewModel(ModelKind(42), ModelParams{}, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildPatternDataset(t *testing.T) {
	fleet := testFleet(t, 1, 120)
	ds, err := BuildPatternDataset(fleet.Faults, features.DefaultPatternConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != len(fleet.Faults) {
		t.Fatalf("pattern dataset has %d samples for %d banks", ds.NumSamples(), len(fleet.Faults))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels are the three classifier classes.
	for _, l := range ds.Labels {
		c := faultsim.Class(l)
		if c != faultsim.ClassSingleRow && c != faultsim.ClassDoubleRow && c != faultsim.ClassScattered {
			t.Fatalf("unexpected label %d", l)
		}
	}
	if _, err := BuildPatternDataset(nil, features.DefaultPatternConfig(), false); err == nil {
		t.Fatal("empty bank list accepted")
	}
}

func TestBuildBlockDataset(t *testing.T) {
	fleet := testFleet(t, 1, 120)
	spec := features.DefaultBlockSpec()
	ds, err := BuildBlockDataset(fleet.Faults, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sample count is a multiple of the block count.
	if ds.NumSamples()%spec.NumBlocks() != 0 {
		t.Fatalf("%d block samples not a multiple of %d", ds.NumSamples(), spec.NumBlocks())
	}
	// Both labels occur and positives are the minority.
	pos, neg := 0, 0
	for _, l := range ds.Labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate block labels: %d positive, %d negative", pos, neg)
	}
	if pos >= neg {
		t.Fatalf("expected positives to be the minority: %d vs %d", pos, neg)
	}
}

func TestSplitBanksStratified(t *testing.T) {
	fleet := testFleet(t, 1, 120)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(7), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != len(fleet.Faults) {
		t.Fatal("split lost banks")
	}
	countClass := func(banks []*faultsim.BankFault, c faultsim.Class) int {
		n := 0
		for _, b := range banks {
			if b.Class() == c {
				n++
			}
		}
		return n
	}
	for _, c := range faultsim.AllClasses {
		tr, te := countClass(train, c), countClass(test, c)
		if tr+te > 3 && (tr == 0 || te == 0) {
			t.Errorf("class %v entirely on one side (%d/%d)", c, tr, te)
		}
	}
	if _, _, err := SplitBanks(fleet.Faults, xrand.New(1), 0); err == nil {
		t.Error("fraction 0 accepted")
	}
}

func TestPipelineFitAndClassify(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	if !p.Fitted() {
		t.Fatal("pipeline not fitted after Fit")
	}
	eval, err := EvaluatePattern(p, test)
	if err != nil {
		t.Fatal(err)
	}
	// The classification task is learnable: weighted F1 well above chance.
	if eval.Weighted.F1 < 0.6 {
		t.Fatalf("RF pattern weighted F1 = %.3f", eval.Weighted.F1)
	}
	// Single-row clustering is effectively classified (paper Table III:
	// the easiest class at ~0.95 F1). Relative ordering against the rare
	// classes is asserted at experiment scale, where their supports are
	// large enough to be stable.
	if single := eval.PerClass[faultsim.ClassSingleRow]; single.F1 < 0.85 {
		t.Errorf("single-row F1 = %.3f, want ≥0.85", single.F1)
	}
}

func TestPredictBlocksShape(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	var agg *faultsim.BankFault
	for _, bf := range test {
		if bf.Class() == faultsim.ClassSingleRow && len(bf.UERRows) >= 4 {
			agg = bf
			break
		}
	}
	if agg == nil {
		t.Skip("no single-row test bank with ≥4 UERs")
	}
	anchor := agg.UERRows[2]
	now := agg.UERTimes[2]
	probs, err := p.PredictBlocks(visibleEvents(agg.Events, now), anchor, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 16 {
		t.Fatalf("got %d block probabilities", len(probs))
	}
	for b, prob := range probs {
		if prob < 0 || prob > 1 {
			t.Fatalf("block %d probability %g", b, prob)
		}
	}
	rows := p.PredictRows(probs, anchor, hbm.DefaultGeometry)
	for _, r := range rows {
		if r < 0 || r >= hbm.DefaultGeometry.RowsPerBank {
			t.Fatalf("predicted row %d out of bank", r)
		}
	}
}

func TestPipelineSaveLoadModels(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, LightGBM, train)
	var buf bytes.Buffer
	if err := p.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := New(p.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}
	for _, bf := range test[:10] {
		a, errA := p.ClassifyPattern(bf.Events)
		b, errB := clone.ClassifyPattern(bf.Events)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatal("loaded pipeline disagrees with original")
		}
	}
}

func TestUnfittedPipelineErrors(t *testing.T) {
	p, err := New(DefaultConfig(RandomForest))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ClassifyPattern(nil); err == nil {
		t.Error("unfitted ClassifyPattern succeeded")
	}
	if _, err := p.PredictBlocks(nil, 0, time.Time{}); err == nil {
		t.Error("unfitted PredictBlocks succeeded")
	}
	if err := p.SaveModels(&bytes.Buffer{}); err == nil {
		t.Error("unfitted SaveModels succeeded")
	}
	if _, err := EvaluatePattern(p, nil); err == nil {
		t.Error("unfitted EvaluatePattern succeeded")
	}
}

func TestEndToEndCordialBeatsNeighborRows(t *testing.T) {
	fleet := testFleet(t, 5, 200)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(9), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	geo := hbm.DefaultGeometry
	spec := p.Config().Block
	budget := sparing.DefaultBudget()

	cordial, err := EvaluatePrediction(&CordialStrategy{Pipeline: p, Geometry: geo}, test, spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := EvaluatePrediction(&NeighborRowsStrategy{Geometry: geo, Block: spec}, test, spec, budget)
	if err != nil {
		t.Fatal(err)
	}

	// The paper's headline result (Table IV): Cordial beats the
	// neighbor-rows baseline on block F1 and on ICR.
	if cordial.Block.F1 <= baseline.Block.F1 {
		t.Errorf("Cordial F1 %.3f not above baseline %.3f", cordial.Block.F1, baseline.Block.F1)
	}
	if cordial.ICR.Rate() <= baseline.ICR.Rate() {
		t.Errorf("Cordial ICR %.3f not above baseline %.3f", cordial.ICR.Rate(), baseline.ICR.Rate())
	}
	// Both must actually make block predictions.
	if cordial.BlockOutcomes.Total() == 0 || baseline.BlockOutcomes.Total() == 0 {
		t.Fatal("no block predictions recorded")
	}
	// Cordial must actually bank-spare some scattered banks.
	if cordial.Usage.BankSpares == 0 {
		t.Error("Cordial never bank-spared")
	}
}

func TestInRowBaselineBoundedBySuddenRatio(t *testing.T) {
	fleet := testFleet(t, 6, 150)
	_, test, err := SplitBanks(fleet.Faults, xrand.New(2), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	inrow, err := EvaluatePrediction(&InRowStrategy{Geometry: hbm.DefaultGeometry},
		test, features.DefaultBlockSpec(), sparing.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	// In-row coverage cannot exceed the non-sudden row ratio (~4.4%) by
	// much — the paper's motivating limitation. Allow slack for noise.
	if rate := inrow.ICR.Rate(); rate > 0.12 {
		t.Fatalf("in-row ICR %.3f unexpectedly high", rate)
	}
	if inrow.BlockOutcomes.Total() != 0 {
		t.Error("in-row baseline should make no block predictions")
	}
}

func TestEvaluatePredictionICRDenominatorCountsAllRows(t *testing.T) {
	fleet := testFleet(t, 6, 150)
	_, test, err := SplitBanks(fleet.Faults, xrand.New(2), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, bf := range test {
		want += len(bf.UERRows)
	}
	res, err := EvaluatePrediction(&NeighborRowsStrategy{Geometry: hbm.DefaultGeometry, Block: features.DefaultBlockSpec()},
		test, features.DefaultBlockSpec(), sparing.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.ICR.Total != want {
		t.Fatalf("ICR denominator %d, want %d", res.ICR.Total, want)
	}
}

func TestPipelinePredictConcurrent(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	// A fitted pipeline's predict methods must be safe for concurrent use.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				bf := test[(g*20+i)%len(test)]
				if _, err := p.ClassifyPattern(bf.Events); err != nil {
					done <- err
					return
				}
				anchor := bf.UERRows[len(bf.UERRows)-1]
				now := bf.UERTimes[len(bf.UERTimes)-1]
				if _, err := p.PredictBlocks(bf.Events, anchor, now); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineImportance(t *testing.T) {
	fleet := testFleet(t, 2, 150)
	train, _, err := SplitBanks(fleet.Faults, xrand.New(3), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	pat, err := p.PatternImportance()
	if err != nil {
		t.Fatal(err)
	}
	blk, err := p.BlockImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(pat) == 0 || len(blk) == 0 {
		t.Fatal("empty importance lists")
	}
	if pat[0].Name == "" || blk[0].Name == "" {
		t.Fatal("importances missing names")
	}
	// Descending order.
	for i := 1; i < len(pat); i++ {
		if pat[i].Score > pat[i-1].Score {
			t.Fatal("pattern importances not sorted")
		}
	}
	// Unfitted pipeline errors.
	unfitted, err := New(DefaultConfig(RandomForest))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unfitted.PatternImportance(); err == nil {
		t.Error("unfitted PatternImportance succeeded")
	}
	if _, err := unfitted.BlockImportance(); err == nil {
		t.Error("unfitted BlockImportance succeeded")
	}
}

func TestCoverageMonotoneInBudget(t *testing.T) {
	// Property: more spare rows per bank can never reduce isolation
	// coverage, for any strategy.
	fleet := testFleet(t, 5, 200)
	_, test, err := SplitBanks(fleet.Faults, xrand.New(9), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	spec := features.DefaultBlockSpec()
	strategy := &NeighborRowsStrategy{Geometry: hbm.DefaultGeometry, Block: spec}
	prev := -1.0
	for _, rows := range []int{1, 4, 16, 64} {
		res, err := EvaluatePrediction(strategy, test, spec, sparing.Budget{
			RowSparesPerBank:     rows,
			BankSparesPerChannel: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if icr := res.ICR.Rate(); icr < prev {
			t.Fatalf("ICR dropped from %.4f to %.4f when budget rose to %d", prev, icr, rows)
		} else {
			prev = icr
		}
	}
}

func TestBlockAUCAvailableForCordial(t *testing.T) {
	fleet := testFleet(t, 5, 200)
	train, test, err := SplitBanks(fleet.Faults, xrand.New(9), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := fitPipeline(t, RandomForest, train)
	res, err := EvaluatePrediction(&CordialStrategy{Pipeline: p, Geometry: hbm.DefaultGeometry},
		test, p.Config().Block, sparing.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	auc, ok := res.BlockAUC()
	if !ok {
		t.Fatal("Cordial produced no block scores")
	}
	// The model ranks far better than chance.
	if auc < 0.7 {
		t.Fatalf("block AUC = %.3f", auc)
	}
	// The baseline has no probabilities → no AUC.
	base, err := EvaluatePrediction(&NeighborRowsStrategy{Geometry: hbm.DefaultGeometry, Block: p.Config().Block},
		test, p.Config().Block, sparing.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base.BlockAUC(); ok {
		t.Fatal("baseline unexpectedly produced scores")
	}
}
