// Sparingpolicy: study how the spare-row budget shapes isolation coverage
// under three mitigation policies — the in-row paradigm, the neighbor-rows
// heuristic, and Cordial — answering the operator's question "how many spare
// rows per bank do I need for cross-row prediction to pay off?"
package main

import (
	"fmt"
	"log"

	"cordial"
	"cordial/internal/core"
	"cordial/internal/sparing"
)

func main() {
	spec := cordial.DefaultFleetSpec()
	spec.UERBanks = 250
	spec.BenignBanks = 600
	spec.Seed = 11
	fleet, err := cordial.Simulate(spec)
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := cordial.Split(fleet.Faults, 3, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := cordial.Train(cordial.RandomForest, train)
	if err != nil {
		log.Fatal(err)
	}
	geo := cordial.DefaultGeometry
	block := pipe.Config().Block

	strategies := []cordial.Strategy{
		cordial.InRowBaseline(geo),
		cordial.NeighborRowsBaseline(geo, block),
		cordial.NewStrategy(pipe, geo),
	}

	fmt.Println("isolation coverage rate (ICR) by spare-row budget per bank")
	fmt.Printf("%-16s", "rows/bank:")
	budgets := []int{4, 8, 16, 32, 64, 128}
	for _, b := range budgets {
		fmt.Printf("%8d", b)
	}
	fmt.Println()

	for _, s := range strategies {
		fmt.Printf("%-16s", s.Name())
		for _, rows := range budgets {
			budget := sparing.Budget{
				RowSparesPerBank:     rows,
				BankSparesPerChannel: 2,
				OfflinePagesPerHBM:   0,
			}
			res, err := core.EvaluatePrediction(s, test, block, budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.1f%%", res.ICR.Rate()*100)
		}
		fmt.Println()
	}

	fmt.Println("\nresource usage at 64 rows/bank:")
	for _, s := range strategies {
		budget := sparing.Budget{RowSparesPerBank: 64, BankSparesPerChannel: 2}
		res, err := core.EvaluatePrediction(s, test, block, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s rows spared: %5d   banks spared: %3d\n",
			s.Name(), res.Usage.RowSpares, res.Usage.BankSpares)
	}
	fmt.Println("\n→ Cordial reaches higher coverage at every budget because it spends")
	fmt.Println("  spares on predicted blocks instead of fixed neighbourhoods, and")
	fmt.Println("  replaces hopelessly scattered banks outright.")
}
