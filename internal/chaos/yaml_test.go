package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLShapes(t *testing.T) {
	doc := `
# top comment
name: demo
quoted: "hello # not a comment"
empty:
fleet:
  nodes: 3
  startup:
    pattern: wave
list:
  - one
  - two
items:
  - name: a
    weight: 1.5
  - name: b
    weight: 2
inline-list:
- solo
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":   "demo",
		"quoted": "hello # not a comment",
		"empty":  nil,
		"fleet": map[string]any{
			"nodes": "3",
			"startup": map[string]any{
				"pattern": "wave",
			},
		},
		"list": []any{"one", "two"},
		"items": []any{
			map[string]any{"name": "a", "weight": "1.5"},
			map[string]any{"name": "b", "weight": "2"},
		},
		"inline-list": []any{"solo"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseYAML mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"tab indent", "a:\n\tb: 1", "tabs"},
		{"no space after colon", "a:1", "missing space"},
		{"bare scalar root", "justastring", "expected"},
		{"duplicate key", "a: 1\na: 2", "duplicate"},
		{"weird key", "a b: 1", "invalid key"},
		{"indent under scalar", "a: 1\n  b: 2", "indent"},
	}
	for _, tc := range cases {
		_, err := parseYAML([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseYAMLEmpty(t *testing.T) {
	got, err := parseYAML([]byte("\n# only a comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty doc = %#v, want empty map", got)
	}
}
