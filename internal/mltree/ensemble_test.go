package mltree

import (
	"bytes"
	"math"
	"testing"

	"cordial/internal/xrand"
)

// noisyBlobs builds overlapping clusters plus label noise, a task where
// ensembles beat single trees.
func noisyBlobs(seed uint64, k, n int) (*Dataset, *Dataset) {
	r := xrand.New(seed)
	mk := func(n int) *Dataset {
		ds := &Dataset{}
		for c := 0; c < k; c++ {
			for i := 0; i < n; i++ {
				row := make([]float64, 6)
				for d := range row {
					row[d] = 3*float64((c+d)%k) + r.Normal(0, 2.5)
				}
				label := c
				if r.Bool(0.05) {
					label = (c + 1) % k
				}
				ds.Features = append(ds.Features, row)
				ds.Labels = append(ds.Labels, label)
			}
		}
		return ds
	}
	return mk(n), mk(n / 3)
}

func TestForestLearnsAndBeatsChance(t *testing.T) {
	train, test := noisyBlobs(1, 3, 200)
	f := NewForest(ForestConfig{NumTrees: 40, Tree: TreeConfig{MaxDepth: 8}, Seed: 1})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(f, test); acc < 0.7 {
		t.Fatalf("forest accuracy = %.3f", acc)
	}
	if f.NumTrees() != 40 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
}

func TestForestOOBScoreReasonable(t *testing.T) {
	train, test := noisyBlobs(2, 3, 200)
	f := NewForest(ForestConfig{NumTrees: 40, Tree: TreeConfig{MaxDepth: 8}, Seed: 2})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	oob := f.OOBScore()
	if oob < 0 || oob > 1 {
		t.Fatalf("OOB = %g out of [0,1]", oob)
	}
	// OOB should roughly track test accuracy.
	if math.Abs(oob-accuracy(f, test)) > 0.15 {
		t.Fatalf("OOB %.3f far from test accuracy %.3f", oob, accuracy(f, test))
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	train, _ := noisyBlobs(3, 3, 100)
	fit := func() *Forest {
		f := NewForest(ForestConfig{NumTrees: 10, Seed: 9})
		if err := f.Fit(train); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := fit(), fit()
	for _, x := range train.Features[:50] {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("forest not deterministic for fixed seed")
			}
		}
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	train, test := noisyBlobs(4, 4, 80)
	f := NewForest(ForestConfig{NumTrees: 15, Seed: 4})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.Features {
		sum := 0.0
		for _, p := range f.PredictProba(x) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("forest probs sum to %g", sum)
		}
	}
}

func TestForestHandlesRareClassMissingFromBags(t *testing.T) {
	// One sample of a rare class: many bootstrap bags will miss it; the
	// forest must still align probabilities correctly.
	train, _ := noisyBlobs(5, 2, 100)
	train.Features = append(train.Features, []float64{99, 99, 99, 99, 99, 99})
	train.Labels = append(train.Labels, 7)
	f := NewForest(ForestConfig{NumTrees: 20, Seed: 5})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Classes()); got != 3 {
		t.Fatalf("classes = %v", f.Classes())
	}
	probs := f.PredictProba([]float64{99, 99, 99, 99, 99, 99})
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %g", sum)
	}
}

func TestGBDTLearnsBinary(t *testing.T) {
	train, test := noisyBlobs(6, 2, 250)
	g := NewGBDT(GBDTConfig{Rounds: 60, MaxDepth: 3, Seed: 6})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(g, test); acc < 0.8 {
		t.Fatalf("GBDT binary accuracy = %.3f", acc)
	}
	if g.NumTrees() != 60 {
		t.Fatalf("NumTrees = %d", g.NumTrees())
	}
}

func TestGBDTLearnsMulticlass(t *testing.T) {
	train, test := noisyBlobs(7, 3, 200)
	g := NewGBDT(GBDTConfig{Rounds: 40, MaxDepth: 3, Seed: 7})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(g, test); acc < 0.7 {
		t.Fatalf("GBDT multiclass accuracy = %.3f", acc)
	}
	// 3 one-vs-rest arms × 40 rounds.
	if g.NumTrees() != 120 {
		t.Fatalf("NumTrees = %d", g.NumTrees())
	}
}

func TestGBDTSubsampling(t *testing.T) {
	train, test := noisyBlobs(8, 2, 250)
	g := NewGBDT(GBDTConfig{Rounds: 60, MaxDepth: 3, SubsampleRatio: 0.7, ColsampleRatio: 0.7, Seed: 8})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(g, test); acc < 0.75 {
		t.Fatalf("subsampled GBDT accuracy = %.3f", acc)
	}
}

func TestGBDTRejectsSingleClass(t *testing.T) {
	ds := &Dataset{Features: [][]float64{{1}, {2}}, Labels: []int{0, 0}}
	if err := NewGBDT(GBDTConfig{Rounds: 2}).Fit(ds); err == nil {
		t.Fatal("single-class dataset accepted")
	}
}

func TestGBDTProbaSumsToOne(t *testing.T) {
	train, test := noisyBlobs(9, 3, 100)
	g := NewGBDT(GBDTConfig{Rounds: 15, Seed: 9})
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	for _, x := range test.Features {
		sum := 0.0
		for _, p := range g.PredictProba(x) {
			if p < 0 {
				t.Fatalf("negative probability %g", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("GBDT probs sum to %g", sum)
		}
	}
}

func TestHistGBDTLearnsBinary(t *testing.T) {
	train, test := noisyBlobs(10, 2, 250)
	h := NewHistGBDT(HistGBDTConfig{Rounds: 60, MaxLeaves: 15, Seed: 10})
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(h, test); acc < 0.8 {
		t.Fatalf("HistGBDT binary accuracy = %.3f", acc)
	}
	if h.NumTrees() != 60 {
		t.Fatalf("NumTrees = %d", h.NumTrees())
	}
}

func TestHistGBDTLearnsMulticlass(t *testing.T) {
	train, test := noisyBlobs(11, 3, 200)
	h := NewHistGBDT(HistGBDTConfig{Rounds: 40, MaxLeaves: 15, Seed: 11})
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(h, test); acc < 0.7 {
		t.Fatalf("HistGBDT multiclass accuracy = %.3f", acc)
	}
}

func TestHistGBDTGOSSDisabled(t *testing.T) {
	train, test := noisyBlobs(12, 2, 150)
	// TopRate+OtherRate ≥ 1 disables GOSS (full data per tree).
	h := NewHistGBDT(HistGBDTConfig{Rounds: 40, TopRate: 0.6, OtherRate: 0.5, Seed: 12})
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(h, test); acc < 0.75 {
		t.Fatalf("no-GOSS HistGBDT accuracy = %.3f", acc)
	}
}

func TestHistGBDTRejectsSingleClass(t *testing.T) {
	ds := &Dataset{Features: [][]float64{{1}, {2}}, Labels: []int{3, 3}}
	if err := NewHistGBDT(HistGBDTConfig{Rounds: 2}).Fit(ds); err == nil {
		t.Fatal("single-class dataset accepted")
	}
}

func TestBinnerMonotone(t *testing.T) {
	features := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	b := newBinner(features, 4)
	prev := -1
	for v := 0.5; v <= 8.5; v += 0.5 {
		bin := b.bin(0, v)
		if bin < prev {
			t.Fatalf("bin index not monotone at %g", v)
		}
		prev = bin
		if bin < 0 || bin >= b.numBins(0) {
			t.Fatalf("bin %d out of range", bin)
		}
	}
}

func TestBinnerConstantFeature(t *testing.T) {
	features := [][]float64{{5}, {5}, {5}}
	b := newBinner(features, 8)
	if b.numBins(0) != 1 {
		t.Fatalf("constant feature has %d bins, want 1", b.numBins(0))
	}
	if b.bin(0, 5) != 0 || b.bin(0, 99) != 0 {
		t.Fatal("constant feature binning wrong")
	}
}

func TestSerializeRoundTripAllModels(t *testing.T) {
	train, test := noisyBlobs(13, 3, 120)
	models := []Classifier{
		NewTree(TreeConfig{MaxDepth: 6}, nil),
		NewForest(ForestConfig{NumTrees: 10, Seed: 13}),
		NewGBDT(GBDTConfig{Rounds: 10, Seed: 13}),
		NewHistGBDT(HistGBDTConfig{Rounds: 10, Seed: 13}),
	}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%T: Save: %v", m, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%T: Load: %v", m, err)
		}
		if got, want := len(loaded.Classes()), len(m.Classes()); got != want {
			t.Fatalf("%T: classes %d vs %d", m, got, want)
		}
		for _, x := range test.Features[:60] {
			pa, pb := m.PredictProba(x), loaded.PredictProba(x)
			for i := range pa {
				if math.Abs(pa[i]-pb[i]) > 1e-12 {
					t.Fatalf("%T: prediction changed after round trip", m)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"kind":"alien","classes":[],"payload":{}}`))); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"kind":"tree","classes":[0],"payload":{}}`))); err == nil {
		t.Fatal("rootless tree accepted")
	}
}

func TestEnsemblesBeatSingleTreeOnNoisyData(t *testing.T) {
	// The paper's rationale for tree ensembles: variance reduction. On a
	// noisy task the forest should not do worse than a deep single tree.
	train, test := noisyBlobs(14, 3, 250)
	tree := NewTree(TreeConfig{}, nil) // fully grown, overfits
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	forest := NewForest(ForestConfig{NumTrees: 50, Seed: 14})
	if err := forest.Fit(train); err != nil {
		t.Fatal(err)
	}
	ta, fa := accuracy(tree, test), accuracy(forest, test)
	if fa < ta-0.02 {
		t.Fatalf("forest (%.3f) worse than single tree (%.3f)", fa, ta)
	}
}

func BenchmarkForestFit(b *testing.B) {
	train, _ := noisyBlobs(1, 3, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewForest(ForestConfig{NumTrees: 20, Seed: uint64(i)})
		if err := f.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBDTFit(b *testing.B) {
	train, _ := noisyBlobs(1, 2, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGBDT(GBDTConfig{Rounds: 20, Seed: uint64(i)})
		if err := g.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistGBDTFit(b *testing.B) {
	train, _ := noisyBlobs(1, 2, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistGBDT(HistGBDTConfig{Rounds: 20, Seed: uint64(i)})
		if err := h.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGBDTEarlyStopping(t *testing.T) {
	train, test := noisyBlobs(15, 2, 250)
	full := NewGBDT(GBDTConfig{Rounds: 150, MaxDepth: 3, Seed: 15})
	if err := full.Fit(train); err != nil {
		t.Fatal(err)
	}
	early := NewGBDT(GBDTConfig{Rounds: 150, MaxDepth: 3, Seed: 15, EarlyStopRounds: 10})
	if err := early.Fit(train); err != nil {
		t.Fatal(err)
	}
	if early.NumTrees() >= full.NumTrees() {
		t.Fatalf("early stopping kept %d trees vs %d without", early.NumTrees(), full.NumTrees())
	}
	// Accuracy must not collapse.
	fa, ea := accuracy(full, test), accuracy(early, test)
	if ea < fa-0.05 {
		t.Fatalf("early-stopped accuracy %.3f far below full %.3f", ea, fa)
	}
}

func TestGBDTPositiveWeightRaisesRecall(t *testing.T) {
	// Heavily imbalanced binary task: 95% negatives.
	r := xrand.New(16)
	mk := func(n int) *Dataset {
		ds := &Dataset{}
		for i := 0; i < n; i++ {
			label := 0
			if r.Bool(0.05) {
				label = 1
			}
			row := []float64{float64(label)*2 + r.Normal(0, 1.6), r.Normal(0, 1)}
			ds.Features = append(ds.Features, row)
			ds.Labels = append(ds.Labels, label)
		}
		return ds
	}
	train, test := mk(2000), mk(1000)
	recallOf := func(weight float64) float64 {
		g := NewGBDT(GBDTConfig{Rounds: 30, MaxDepth: 3, Seed: 16, PositiveWeight: weight})
		if err := g.Fit(train); err != nil {
			t.Fatal(err)
		}
		tp, fn := 0, 0
		for i, x := range test.Features {
			if test.Labels[i] != 1 {
				continue
			}
			if Predict(g, x) == 1 {
				tp++
			} else {
				fn++
			}
		}
		if tp+fn == 0 {
			t.Skip("no positives in test draw")
		}
		return float64(tp) / float64(tp+fn)
	}
	plain := recallOf(1)
	weighted := recallOf(8)
	if weighted <= plain {
		t.Fatalf("positive weighting did not raise recall: %.3f vs %.3f", weighted, plain)
	}
}

func TestHistGBDTEarlyStopping(t *testing.T) {
	train, test := noisyBlobs(17, 2, 250)
	full := NewHistGBDT(HistGBDTConfig{Rounds: 150, MaxLeaves: 15, Seed: 17})
	if err := full.Fit(train); err != nil {
		t.Fatal(err)
	}
	early := NewHistGBDT(HistGBDTConfig{Rounds: 150, MaxLeaves: 15, Seed: 17, EarlyStopRounds: 10})
	if err := early.Fit(train); err != nil {
		t.Fatal(err)
	}
	if early.NumTrees() >= full.NumTrees() {
		t.Fatalf("early stopping kept %d trees vs %d without", early.NumTrees(), full.NumTrees())
	}
	fa, ea := accuracy(full, test), accuracy(early, test)
	if ea < fa-0.05 {
		t.Fatalf("early-stopped accuracy %.3f far below full %.3f", ea, fa)
	}
}

func TestHistGBDTPositiveWeightChangesOperatingPoint(t *testing.T) {
	r := xrand.New(18)
	mk := func(n int) *Dataset {
		ds := &Dataset{}
		for i := 0; i < n; i++ {
			label := 0
			if r.Bool(0.05) {
				label = 1
			}
			row := []float64{float64(label)*2 + r.Normal(0, 1.6), r.Normal(0, 1)}
			ds.Features = append(ds.Features, row)
			ds.Labels = append(ds.Labels, label)
		}
		return ds
	}
	train, test := mk(2000), mk(1000)
	recallOf := func(weight float64) float64 {
		h := NewHistGBDT(HistGBDTConfig{Rounds: 30, MaxLeaves: 7, Seed: 18, PositiveWeight: weight})
		if err := h.Fit(train); err != nil {
			t.Fatal(err)
		}
		tp, fn := 0, 0
		for i, x := range test.Features {
			if test.Labels[i] != 1 {
				continue
			}
			if Predict(h, x) == 1 {
				tp++
			} else {
				fn++
			}
		}
		if tp+fn == 0 {
			t.Skip("no positives in test draw")
		}
		return float64(tp) / float64(tp+fn)
	}
	plain := recallOf(1)
	weighted := recallOf(8)
	if weighted <= plain {
		t.Fatalf("positive weighting did not raise recall: %.3f vs %.3f", weighted, plain)
	}
}

func TestForestParallelFitDeterministic(t *testing.T) {
	train, test := noisyBlobs(19, 3, 150)
	fit := func(parallelism int) *Forest {
		f := NewForest(ForestConfig{NumTrees: 16, Seed: 19, Parallelism: parallelism})
		if err := f.Fit(train); err != nil {
			t.Fatal(err)
		}
		return f
	}
	serial := fit(1)
	parallel := fit(4)
	if serial.OOBScore() != parallel.OOBScore() {
		t.Fatalf("OOB differs: %g vs %g", serial.OOBScore(), parallel.OOBScore())
	}
	for _, x := range test.Features {
		ps, pp := serial.PredictProba(x), parallel.PredictProba(x)
		for i := range ps {
			if ps[i] != pp[i] {
				t.Fatal("parallel fit changed predictions")
			}
		}
	}
}
